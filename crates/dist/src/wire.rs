//! [`Wire`]: mergeable structures that can cross node boundaries.
//!
//! A distributed Spawn ships a **state snapshot** to the executing node; a
//! distributed Merge ships the **operation log** back. Rebasing stays on
//! the coordinator: the returned operations are replayed onto the local
//! *shadow fork* taken at spawn time, and the shadow merges through the
//! ordinary [`Mergeable`] machinery — so the distributed semantics are
//! byte-identical to the shared-memory ones.

use bytes::{Bytes, BytesMut};
use sm_codec::{Decode, DecodeError, Encode};
use sm_mergeable::{
    MCounter, MCounterMap, MList, MMap, MQueue, MRegister, MSet, MText, MTree, Mergeable,
};
use sm_ot::tree::Node;

use crate::DistError;

/// A mergeable structure whose state and operation log can be serialized.
pub trait Wire: Mergeable {
    /// Encode a snapshot of the current state (no log, no fork metadata).
    fn encode_state(&self, buf: &mut BytesMut);

    /// Decode a snapshot into a fresh instance with an empty log.
    fn decode_state(buf: &mut Bytes) -> Result<Self, DecodeError>;

    /// Encode the locally recorded operation log.
    fn encode_log(&self, buf: &mut BytesMut);

    /// Decode an operation log and apply + record it here. Returns the
    /// number of operations applied.
    fn apply_log(&mut self, buf: &mut Bytes) -> Result<usize, DistError>;
}

/// Encode a log with span compaction applied first: runs of fusible
/// operations (contiguous inserts, same-key puts, counter adds…) cross
/// the wire as single span ops. Compaction is rebase-preserving, so the
/// coordinator's shadow replay merges byte-identically to shipping the
/// raw log — only the `WireSent` byte counts shrink.
fn encode_compact_log<O>(log: &[O], buf: &mut BytesMut)
where
    O: sm_ot::Operation + Encode,
{
    let ops = sm_ot::compose::compact_cow(log);
    sm_codec::put_varint(buf, ops.len() as u64);
    for op in ops.iter() {
        op.encode(buf);
    }
}

macro_rules! apply_ops {
    ($self:ident, $buf:ident, $op_ty:ty) => {{
        let ops: Vec<$op_ty> = Vec::decode($buf)?;
        let n = ops.len();
        for op in ops {
            $self
                .apply_op(op)
                .map_err(|e| DistError::Apply(e.to_string()))?;
        }
        Ok(n)
    }};
}

impl<T> Wire for MList<T>
where
    T: sm_ot::list::Element + Encode + Decode,
{
    fn encode_state(&self, buf: &mut BytesMut) {
        self.to_vec().encode(buf);
    }

    fn decode_state(buf: &mut Bytes) -> Result<Self, DecodeError> {
        Ok(MList::from_vec(Vec::decode(buf)?))
    }

    fn encode_log(&self, buf: &mut BytesMut) {
        encode_compact_log(self.log(), buf);
    }

    fn apply_log(&mut self, buf: &mut Bytes) -> Result<usize, DistError> {
        apply_ops!(self, buf, sm_ot::list::ListOp<T>)
    }
}

impl<T> Wire for MQueue<T>
where
    T: sm_ot::list::Element + Encode + Decode,
{
    fn encode_state(&self, buf: &mut BytesMut) {
        self.to_vec().encode(buf);
    }

    fn decode_state(buf: &mut Bytes) -> Result<Self, DecodeError> {
        Ok(MQueue::from_vec(Vec::decode(buf)?))
    }

    fn encode_log(&self, buf: &mut BytesMut) {
        encode_compact_log(self.log(), buf);
    }

    fn apply_log(&mut self, buf: &mut Bytes) -> Result<usize, DistError> {
        apply_ops!(self, buf, sm_ot::list::ListOp<T>)
    }
}

impl Wire for MText {
    fn encode_state(&self, buf: &mut BytesMut) {
        self.to_string().encode(buf);
    }

    fn decode_state(buf: &mut Bytes) -> Result<Self, DecodeError> {
        Ok(MText::from(String::decode(buf)?))
    }

    fn encode_log(&self, buf: &mut BytesMut) {
        encode_compact_log(self.log(), buf);
    }

    fn apply_log(&mut self, buf: &mut Bytes) -> Result<usize, DistError> {
        apply_ops!(self, buf, sm_ot::text::TextOp)
    }
}

impl<K, V> Wire for MMap<K, V>
where
    K: sm_ot::map::Key + Encode + Decode,
    V: sm_ot::map::Value + Encode + Decode,
{
    fn encode_state(&self, buf: &mut BytesMut) {
        let entries: Vec<(K, V)> = self.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        entries.encode(buf);
    }

    fn decode_state(buf: &mut Bytes) -> Result<Self, DecodeError> {
        Ok(MMap::from_entries(Vec::<(K, V)>::decode(buf)?))
    }

    fn encode_log(&self, buf: &mut BytesMut) {
        encode_compact_log(self.log(), buf);
    }

    fn apply_log(&mut self, buf: &mut Bytes) -> Result<usize, DistError> {
        apply_ops!(self, buf, sm_ot::map::MapOp<K, V>)
    }
}

impl<T> Wire for MSet<T>
where
    T: sm_ot::set::Element + Encode + Decode,
{
    fn encode_state(&self, buf: &mut BytesMut) {
        let items: Vec<T> = self.iter().cloned().collect();
        items.encode(buf);
    }

    fn decode_state(buf: &mut Bytes) -> Result<Self, DecodeError> {
        Ok(MSet::from_items(Vec::<T>::decode(buf)?))
    }

    fn encode_log(&self, buf: &mut BytesMut) {
        encode_compact_log(self.log(), buf);
    }

    fn apply_log(&mut self, buf: &mut Bytes) -> Result<usize, DistError> {
        apply_ops!(self, buf, sm_ot::set::SetOp<T>)
    }
}

impl Wire for MCounter {
    fn encode_state(&self, buf: &mut BytesMut) {
        self.get().encode(buf);
    }

    fn decode_state(buf: &mut Bytes) -> Result<Self, DecodeError> {
        Ok(MCounter::new(i64::decode(buf)?))
    }

    fn encode_log(&self, buf: &mut BytesMut) {
        encode_compact_log(self.log(), buf);
    }

    fn apply_log(&mut self, buf: &mut Bytes) -> Result<usize, DistError> {
        apply_ops!(self, buf, sm_ot::counter::CounterOp)
    }
}

impl<T> Wire for MRegister<T>
where
    T: sm_ot::register::Value + Encode + Decode,
{
    fn encode_state(&self, buf: &mut BytesMut) {
        self.get().encode(buf);
    }

    fn decode_state(buf: &mut Bytes) -> Result<Self, DecodeError> {
        Ok(MRegister::new(T::decode(buf)?))
    }

    fn encode_log(&self, buf: &mut BytesMut) {
        encode_compact_log(self.log(), buf);
    }

    fn apply_log(&mut self, buf: &mut Bytes) -> Result<usize, DistError> {
        apply_ops!(self, buf, sm_ot::register::RegisterOp<T>)
    }
}

impl<K> Wire for MCounterMap<K>
where
    K: sm_ot::cmap::Key + Encode + Decode,
{
    fn encode_state(&self, buf: &mut BytesMut) {
        let entries: Vec<(K, i64)> = self.iter().map(|(k, v)| (k.clone(), *v)).collect();
        entries.encode(buf);
    }

    fn decode_state(buf: &mut Bytes) -> Result<Self, DecodeError> {
        Ok(MCounterMap::from_entries(Vec::<(K, i64)>::decode(buf)?))
    }

    fn encode_log(&self, buf: &mut BytesMut) {
        encode_compact_log(self.log(), buf);
    }

    fn apply_log(&mut self, buf: &mut Bytes) -> Result<usize, DistError> {
        apply_ops!(self, buf, sm_ot::cmap::CounterMapOp<K>)
    }
}

impl<V> Wire for MTree<V>
where
    V: sm_ot::tree::Value + Encode + Decode,
{
    fn encode_state(&self, buf: &mut BytesMut) {
        self.root().encode(buf);
    }

    fn decode_state(buf: &mut Bytes) -> Result<Self, DecodeError> {
        Ok(MTree::from_root(Node::decode(buf)?))
    }

    fn encode_log(&self, buf: &mut BytesMut) {
        encode_compact_log(self.log(), buf);
    }

    fn apply_log(&mut self, buf: &mut Bytes) -> Result<usize, DistError> {
        apply_ops!(self, buf, sm_ot::tree::TreeOp<V>)
    }
}

impl<M: Wire> Wire for Vec<M> {
    fn encode_state(&self, buf: &mut BytesMut) {
        sm_codec::put_varint(buf, self.len() as u64);
        for m in self {
            m.encode_state(buf);
        }
    }

    fn decode_state(buf: &mut Bytes) -> Result<Self, DecodeError> {
        let len = sm_codec::get_varint(buf)?;
        if len > 1_000_000 {
            return Err(DecodeError::BadLength(len));
        }
        let mut v = Vec::with_capacity(len as usize);
        for _ in 0..len {
            v.push(M::decode_state(buf)?);
        }
        Ok(v)
    }

    fn encode_log(&self, buf: &mut BytesMut) {
        sm_codec::put_varint(buf, self.len() as u64);
        for m in self {
            m.encode_log(buf);
        }
    }

    fn apply_log(&mut self, buf: &mut Bytes) -> Result<usize, DistError> {
        let len = sm_codec::get_varint(buf)?;
        if len as usize != self.len() {
            return Err(DistError::Protocol(format!(
                "log vector length {len} does not match state length {}",
                self.len()
            )));
        }
        let mut total = 0;
        for m in self.iter_mut() {
            total += m.apply_log(buf)?;
        }
        Ok(total)
    }
}

macro_rules! impl_wire_tuple {
    ( $( $name:ident : $idx:tt ),+ ) => {
        impl<$( $name: Wire ),+> Wire for ( $( $name, )+ ) {
            fn encode_state(&self, buf: &mut BytesMut) {
                $( self.$idx.encode_state(buf); )+
            }

            fn decode_state(buf: &mut Bytes) -> Result<Self, DecodeError> {
                Ok(( $( $name::decode_state(buf)?, )+ ))
            }

            fn encode_log(&self, buf: &mut BytesMut) {
                $( self.$idx.encode_log(buf); )+
            }

            fn apply_log(&mut self, buf: &mut Bytes) -> Result<usize, DistError> {
                let mut total = 0;
                $( total += self.$idx.apply_log(buf)?; )+
                Ok(total)
            }
        }
    };
}
impl_wire_tuple!(A: 0);
impl_wire_tuple!(A: 0, B: 1);
impl_wire_tuple!(A: 0, B: 1, C: 2);
impl_wire_tuple!(A: 0, B: 1, C: 2, D: 3);

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_state<W: Wire + PartialEq + std::fmt::Debug>(w: &W) {
        let mut buf = BytesMut::new();
        w.encode_state(&mut buf);
        let mut bytes = buf.freeze();
        let back = W::decode_state(&mut bytes).expect("decode");
        assert!(bytes.is_empty(), "state decode must consume everything");
        assert_eq!(&back, w);
    }

    #[test]
    fn state_roundtrips() {
        roundtrip_state(&MList::from_iter([1u32, 2, 3]));
        roundtrip_state(&MQueue::from_iter(["a".to_string(), "b".to_string()]));
        roundtrip_state(&MText::from("héllo"));
        roundtrip_state(&MMap::from_entries([("k".to_string(), 7i64)]));
        roundtrip_state(&MSet::from_items([1u64, 5]));
        roundtrip_state(&MCounter::new(-3));
        roundtrip_state(&MRegister::new(true));
        roundtrip_state(&MCounterMap::from_entries([("w".to_string(), 2i64)]));
        roundtrip_state(&(MCounter::new(1), MText::from("x")));
        roundtrip_state(&vec![MCounter::new(1), MCounter::new(2)]);
    }

    #[test]
    fn tree_state_roundtrips() {
        let mut t = MTree::new(1u32);
        t.push_child(&[], Node::branch(2, vec![Node::leaf(3)]));
        roundtrip_state(&t);
    }

    #[test]
    fn log_ships_and_replays() {
        // Simulate the full remote round trip by hand: fork, ship state,
        // mutate remotely, ship log back, replay onto the shadow, merge.
        let mut coordinator = MList::from_iter([1u32, 2]);
        let shadow = coordinator.fork();

        // Ship the snapshot to the "remote node".
        let mut buf = BytesMut::new();
        shadow.encode_state(&mut buf);
        let mut remote = MList::<u32>::decode_state(&mut buf.freeze()).unwrap();

        // Remote work.
        remote.push(9);
        remote.remove(0);

        // Ship the log back and replay onto the shadow.
        let mut buf = BytesMut::new();
        remote.encode_log(&mut buf);
        let mut shadow = shadow;
        let n = shadow.apply_log(&mut buf.freeze()).unwrap();
        assert_eq!(n, 2);

        // Coordinator meanwhile worked too; merge resolves via OT.
        coordinator.push(5);
        coordinator.merge(&shadow).unwrap();
        assert_eq!(coordinator.to_vec(), vec![2, 5, 9]);
    }

    #[test]
    fn composite_log_roundtrip() {
        let base = (MCounterMap::<String>::new(), MText::new());
        let mut remote = base.clone();
        remote.0.add("w".to_string(), 3);
        remote.1.push_str("hi");
        let mut buf = BytesMut::new();
        remote.encode_log(&mut buf);

        let mut shadow = base.fork();
        let n = shadow.apply_log(&mut buf.freeze()).unwrap();
        assert_eq!(n, 2);
        assert_eq!(shadow.0.get(&"w".to_string()), 3);
        assert_eq!(shadow.1, "hi");
    }

    #[test]
    fn wire_log_is_compacted() {
        // A fork point mid-log blocks in-place tail fusion (the barrier
        // keeps fork bases addressable), so the remote's log holds more
        // ops than necessary. The wire encoding compacts anyway: the
        // whole log is shipped, never sliced, so spans may cross the
        // fork point on the wire.
        let base = MList::from_iter([9u32]);
        let mut remote = base.fork();
        remote.push(1);
        let _pin = remote.fork();
        remote.push(2);
        remote.push(3);
        assert!(remote.pending_ops() >= 2, "fork point blocked fusion");

        let mut buf = BytesMut::new();
        remote.encode_log(&mut buf);
        let mut bytes = buf.freeze();
        let ops: Vec<sm_ot::list::ListOp<u32>> = Vec::decode(&mut bytes).unwrap();
        assert_eq!(
            ops,
            vec![sm_ot::list::ListOp::InsertRun(1, vec![1, 2, 3])],
            "contiguous appends cross the wire as one span"
        );

        // Replaying the compacted log yields the same state as the raw one.
        let mut buf = BytesMut::new();
        remote.encode_log(&mut buf);
        let mut shadow = base.fork();
        shadow.apply_log(&mut buf.freeze()).unwrap();
        assert_eq!(shadow.to_vec(), remote.to_vec());
    }

    #[test]
    fn vec_log_shape_mismatch_detected() {
        let remote = vec![MCounter::new(0), MCounter::new(0)];
        let mut buf = BytesMut::new();
        remote.encode_log(&mut buf);
        let mut wrong_shape = vec![MCounter::new(0)];
        assert!(matches!(
            wrong_shape.apply_log(&mut buf.freeze()),
            Err(DistError::Protocol(_))
        ));
    }
}
