//! [`Wire`]: mergeable structures that can cross node boundaries.
//!
//! A distributed Spawn ships a **state snapshot** to the executing node; a
//! distributed Merge ships the **operation log** back. Rebasing stays on
//! the coordinator: the returned operations are replayed onto the local
//! *shadow fork* taken at spawn time, and the shadow merges through the
//! ordinary [`Mergeable`](sm_mergeable::Mergeable) machinery — so the
//! distributed semantics are byte-identical to the shared-memory ones.
//!
//! The codec itself lives in [`sm_mergeable::persist`], because the
//! durable store journals exactly the same wire shapes (a node's store
//! snapshot *is* an `encode_state`, a journaled commit replays through
//! `apply_log`). `Wire` is the trait under its distributed name.

use crate::DistError;
use sm_mergeable::ReplayError;

pub use sm_mergeable::Persist as Wire;

impl From<ReplayError> for DistError {
    fn from(e: ReplayError) -> Self {
        match e {
            ReplayError::Decode(d) => DistError::Decode(d),
            ReplayError::Apply(a) => DistError::Apply(a),
            ReplayError::Shape(s) => DistError::Protocol(s),
            ReplayError::Count { .. } => DistError::Protocol(e.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;
    use sm_codec::DecodeError;
    use sm_mergeable::MCounter;

    #[test]
    fn replay_errors_map_onto_dist_errors() {
        assert_eq!(
            DistError::from(ReplayError::Decode(DecodeError::UnexpectedEnd)),
            DistError::Decode(DecodeError::UnexpectedEnd)
        );
        assert_eq!(
            DistError::from(ReplayError::Apply("boom".into())),
            DistError::Apply("boom".into())
        );
        assert_eq!(
            DistError::from(ReplayError::Shape("len".into())),
            DistError::Protocol("len".into())
        );
    }

    #[test]
    fn vec_shape_mismatch_surfaces_as_protocol_violation() {
        // The coordinator treats a shape drift on the wire as a protocol
        // violation by the peer.
        let remote = vec![MCounter::new(0), MCounter::new(0)];
        let mut buf = BytesMut::new();
        remote.encode_log(&mut buf);
        let mut wrong_shape = vec![MCounter::new(0)];
        let err: DistError = wrong_shape.apply_log(&mut buf.freeze()).unwrap_err().into();
        assert!(matches!(err, DistError::Protocol(_)));
    }
}
