//! **Distributed Spawn & Merge** — the paper's closing future-work item:
//! *"we plan to apply the concept of Spawn and Merge to distributed
//! computing by using MPI"* (§VI).
//!
//! This crate realizes that design over a simulated cluster (worker nodes
//! as OS threads joined by the `sm-net` loopback network, standing in for
//! MPI ranks — the substitution is documented in `DESIGN.md`):
//!
//! * **Spawn** serializes a state snapshot of the coordinator's mergeable
//!   data ([`Wire::encode_state`], via the `sm-codec` binary format) and
//!   ships it to a worker node together with a registered job name.
//! * The node executes the job against its private copy, recording
//!   operations exactly as a local task would.
//! * **Merge** ships the operation log back; the coordinator replays it
//!   onto the shadow fork taken at spawn time and merges through the
//!   ordinary OT rebase. `merge_all` merges in **spawn order** —
//!   deterministic results no matter which node finishes first;
//!   `merge_any` opts into completion order.
//!
//! ```
//! use sm_dist::{DistRuntime, JobRegistry};
//! use sm_mergeable::MCounterMap;
//!
//! let mut jobs: JobRegistry<MCounterMap<String>> = JobRegistry::new();
//! jobs.register("count", |data, arg| {
//!     for w in String::from_utf8_lossy(arg).split_whitespace() {
//!         data.inc(w.to_string());
//!     }
//!     Ok(())
//! });
//!
//! let mut rt = DistRuntime::launch(2, MCounterMap::new(), &jobs).unwrap();
//! rt.spawn(1, "count", b"a b a").unwrap();
//! rt.spawn(2, "count", b"b c").unwrap();
//! rt.merge_all().unwrap();
//! let counts = rt.shutdown().unwrap();
//! assert_eq!(counts.get(&"a".to_string()), 2);
//! assert_eq!(counts.get(&"b".to_string()), 2);
//! assert_eq!(counts.get(&"c".to_string()), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod runtime;
mod wire;

pub use cluster::{Cluster, JobFn, JobRegistry, NodeId};
pub use runtime::{DistOutcome, DistRuntime, DistTaskId, TelemetryConfig};
pub use wire::Wire;

use std::fmt;

/// Errors of the distributed runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DistError {
    /// Referenced a node id outside the cluster.
    NoSuchNode(NodeId),
    /// The link to a node failed.
    Link(String),
    /// A wire payload failed to decode.
    Decode(sm_codec::DecodeError),
    /// A replayed operation failed to apply (transformation bug or
    /// corrupted log).
    Apply(String),
    /// The peer violated the wire protocol.
    Protocol(String),
    /// The coordinator's durability journal failed (the program's merge
    /// semantics are unaffected; durability is).
    Journal(String),
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::NoSuchNode(n) => write!(f, "no such node: {n}"),
            DistError::Link(e) => write!(f, "node link failed: {e}"),
            DistError::Decode(e) => write!(f, "wire decode failed: {e}"),
            DistError::Apply(e) => write!(f, "operation replay failed: {e}"),
            DistError::Protocol(e) => write!(f, "protocol violation: {e}"),
            DistError::Journal(e) => write!(f, "coordinator journal failed: {e}"),
        }
    }
}

impl std::error::Error for DistError {}

impl From<sm_store::StoreError> for DistError {
    fn from(e: sm_store::StoreError) -> Self {
        DistError::Journal(e.to_string())
    }
}

impl From<sm_codec::DecodeError> for DistError {
    fn from(e: sm_codec::DecodeError) -> Self {
        DistError::Decode(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_mergeable::{MCounter, MCounterMap, MList, MText};

    fn counting_jobs() -> JobRegistry<MCounterMap<String>> {
        let mut jobs = JobRegistry::new();
        jobs.register("count", |data: &mut MCounterMap<String>, arg: &[u8]| {
            for w in String::from_utf8_lossy(arg).split_whitespace() {
                data.inc(w.to_string());
            }
            Ok(())
        });
        jobs
    }

    #[test]
    fn word_count_across_nodes() {
        let jobs = counting_jobs();
        let mut rt = DistRuntime::launch(3, MCounterMap::new(), &jobs).unwrap();
        rt.spawn(1, "count", b"the quick brown fox").unwrap();
        rt.spawn(2, "count", b"the lazy dog").unwrap();
        rt.spawn(3, "count", b"the end").unwrap();
        let outcomes = rt.merge_all().unwrap();
        assert_eq!(outcomes.len(), 3);
        assert!(outcomes.iter().all(DistOutcome::merged));
        let counts = rt.shutdown().unwrap();
        assert_eq!(counts.get(&"the".to_string()), 3);
        assert_eq!(counts.get(&"quick".to_string()), 1);
        assert_eq!(counts.total(), 9);
    }

    #[test]
    fn merge_all_is_deterministic_despite_node_timing() {
        let mut jobs: JobRegistry<MList<u64>> = JobRegistry::new();
        jobs.register("push", |data, arg| {
            // Variable delay: completion order across nodes scrambles.
            let v = arg[0] as u64;
            std::thread::sleep(std::time::Duration::from_micros((v * 37) % 500));
            data.push(v);
            Ok(())
        });
        let run_once = || {
            let mut rt = DistRuntime::launch(4, MList::new(), &jobs).unwrap();
            for i in 0..8u8 {
                let node = rt.node_for(i as usize);
                rt.spawn(node, "push", &[i]).unwrap();
            }
            rt.merge_all().unwrap();
            rt.shutdown().unwrap().to_vec()
        };
        let first = run_once();
        assert_eq!(first, (0..8u64).collect::<Vec<_>>(), "spawn-order merge");
        for _ in 0..4 {
            assert_eq!(run_once(), first);
        }
    }

    #[test]
    fn coordinator_edits_participate_in_rebase() {
        let mut jobs: JobRegistry<MText> = JobRegistry::new();
        jobs.register("append", |data, arg| {
            let s = String::from_utf8_lossy(arg).into_owned();
            let at = data.char_len();
            data.insert_str(at, s);
            Ok(())
        });
        let mut rt = DistRuntime::launch(2, MText::from("doc:"), &jobs).unwrap();
        rt.spawn(1, "append", b" remote1").unwrap();
        rt.spawn(2, "append", b" remote2").unwrap();
        // Coordinator edits concurrently with the remote tasks.
        rt.data_mut().push_str(" local");
        rt.merge_all().unwrap();
        let doc = rt.shutdown().unwrap();
        assert_eq!(doc, "doc: local remote1 remote2");
    }

    #[test]
    fn failed_job_is_dismissed_like_an_abort() {
        let mut jobs: JobRegistry<MCounter> = JobRegistry::new();
        jobs.register("good", |d, _| {
            d.add(1);
            Ok(())
        });
        jobs.register("bad", |d, _| {
            d.add(1000);
            Err("refused".into())
        });
        let mut rt = DistRuntime::launch(2, MCounter::new(0), &jobs).unwrap();
        rt.spawn(1, "good", &[]).unwrap();
        rt.spawn(2, "bad", &[]).unwrap();
        let outcomes = rt.merge_all().unwrap();
        assert!(outcomes[0].merged());
        assert_eq!(outcomes[1].result, Err("refused".to_string()));
        assert_eq!(rt.shutdown().unwrap().get(), 1);
    }

    #[test]
    fn panicking_job_is_contained_and_reported() {
        let mut jobs: JobRegistry<MCounter> = JobRegistry::new();
        jobs.register("kaboom", |d, _| {
            d.add(42);
            panic!("node meltdown");
        });
        jobs.register("ok", |d, _| {
            d.add(1);
            Ok(())
        });
        let mut rt = DistRuntime::launch(1, MCounter::new(0), &jobs).unwrap();
        rt.spawn(1, "kaboom", &[]).unwrap();
        // The node must survive the panic and still serve further tasks.
        rt.spawn(1, "ok", &[]).unwrap();
        let outcomes = rt.merge_all().unwrap();
        assert!(outcomes[0]
            .result
            .as_ref()
            .unwrap_err()
            .contains("panicked"));
        assert!(outcomes[1].merged());
        assert_eq!(
            rt.shutdown().unwrap().get(),
            1,
            "panicked job's changes dismissed"
        );
    }

    #[test]
    fn unknown_job_reports_an_error() {
        let jobs: JobRegistry<MCounter> = JobRegistry::new();
        let mut rt = DistRuntime::launch(1, MCounter::new(0), &jobs).unwrap();
        rt.spawn(1, "nope", &[]).unwrap();
        let outcomes = rt.merge_all().unwrap();
        assert!(outcomes[0]
            .result
            .as_ref()
            .unwrap_err()
            .contains("unknown job"));
        rt.shutdown().unwrap();
    }

    #[test]
    fn spawning_on_invalid_node_fails_fast() {
        let jobs: JobRegistry<MCounter> = JobRegistry::new();
        let mut rt = DistRuntime::launch(2, MCounter::new(0), &jobs).unwrap();
        assert_eq!(rt.spawn(0, "x", &[]), Err(DistError::NoSuchNode(0)));
        assert_eq!(rt.spawn(3, "x", &[]), Err(DistError::NoSuchNode(3)));
        rt.shutdown().unwrap();
    }

    #[test]
    fn merge_any_drains_in_completion_order() {
        let jobs = counting_jobs();
        let mut rt = DistRuntime::launch(2, MCounterMap::new(), &jobs).unwrap();
        rt.spawn(1, "count", b"x").unwrap();
        rt.spawn(2, "count", b"y").unwrap();
        let mut merged = 0;
        while let Some(outcome) = rt.merge_any().unwrap() {
            assert!(outcome.merged());
            merged += 1;
        }
        assert_eq!(merged, 2);
        let counts = rt.shutdown().unwrap();
        assert_eq!(counts.total(), 2);
    }

    #[test]
    fn sequential_tasks_on_one_node() {
        let jobs = counting_jobs();
        let mut rt = DistRuntime::launch(1, MCounterMap::new(), &jobs).unwrap();
        for _ in 0..5 {
            rt.spawn(1, "count", b"w").unwrap();
        }
        rt.merge_all().unwrap();
        assert_eq!(rt.shutdown().unwrap().get(&"w".to_string()), 5);
    }

    #[test]
    fn shutdown_merges_outstanding_tasks_implicitly() {
        let jobs = counting_jobs();
        let mut rt = DistRuntime::launch(2, MCounterMap::new(), &jobs).unwrap();
        rt.spawn(1, "count", b"a").unwrap();
        rt.spawn(2, "count", b"b").unwrap();
        // No explicit merge: shutdown performs the implicit MergeAll.
        let counts = rt.shutdown().unwrap();
        assert_eq!(counts.total(), 2);
    }
}
