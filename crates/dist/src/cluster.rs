//! The simulated cluster: worker nodes, job registry, wire protocol.
//!
//! Each node is an OS thread with a message link to the coordinator over
//! the `sm-net` loopback network — the stand-in for MPI ranks (see
//! `DESIGN.md`: the paper names MPI as the future-work substrate; a
//! loopback cluster exercises the same code path — serialize state, ship,
//! execute remotely, ship operations back — without real NICs).
//! A node executes its tasks **sequentially**, like an MPI rank;
//! parallelism comes from spreading tasks across nodes.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use sm_codec::{Decode, DecodeError, Encode};
use sm_net::{NetError, Network, RecvHalf, SendHalf};

use crate::wire::Wire;
use crate::DistError;

/// Identifies a worker node (1-based; 0 is the coordinator).
pub type NodeId = usize;

/// A job body: runs on the worker against the shipped data copy, with an
/// opaque argument.
pub type JobFn<D> = Arc<dyn Fn(&mut D, &[u8]) -> Result<(), String> + Send + Sync>;

/// Named jobs executable on worker nodes. Closures cannot cross the
/// (simulated) wire, so jobs are registered under names on every node —
/// the standard SPMD arrangement.
pub struct JobRegistry<D> {
    jobs: HashMap<String, JobFn<D>>,
}

impl<D> Default for JobRegistry<D> {
    fn default() -> Self {
        Self::new()
    }
}

impl<D> Clone for JobRegistry<D> {
    fn clone(&self) -> Self {
        JobRegistry {
            jobs: self.jobs.clone(),
        }
    }
}

impl<D> JobRegistry<D> {
    /// An empty registry.
    pub fn new() -> Self {
        JobRegistry {
            jobs: HashMap::new(),
        }
    }

    /// Register `job` under `name` (replacing any previous binding).
    pub fn register(
        &mut self,
        name: impl Into<String>,
        job: impl Fn(&mut D, &[u8]) -> Result<(), String> + Send + Sync + 'static,
    ) -> &mut Self {
        self.jobs.insert(name.into(), Arc::new(job));
        self
    }

    /// Look up a job.
    pub fn get(&self, name: &str) -> Option<&JobFn<D>> {
        self.jobs.get(name)
    }

    /// Registered job names (sorted, for diagnostics).
    pub fn names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.jobs.keys().map(String::as_str).collect();
        v.sort_unstable();
        v
    }
}

/// Coordinator → worker and worker → coordinator protocol messages.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum WireMsg {
    /// Run `job` over the embedded state snapshot.
    Spawn {
        task: u64,
        job: String,
        state: Vec<u8>,
        arg: Vec<u8>,
    },
    /// Task finished: the payload is the encoded op log (ok) or an error
    /// string (not ok).
    Done {
        task: u64,
        ok: bool,
        payload: Vec<u8>,
    },
    /// Worker should exit.
    Shutdown,
}

impl Encode for WireMsg {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            WireMsg::Spawn {
                task,
                job,
                state,
                arg,
            } => {
                buf.put_u8(0);
                task.encode(buf);
                job.encode(buf);
                state.encode(buf);
                arg.encode(buf);
            }
            WireMsg::Done { task, ok, payload } => {
                buf.put_u8(1);
                task.encode(buf);
                ok.encode(buf);
                payload.encode(buf);
            }
            WireMsg::Shutdown => buf.put_u8(2),
        }
    }
}

impl Decode for WireMsg {
    fn decode(buf: &mut Bytes) -> Result<Self, DecodeError> {
        if !buf.has_remaining() {
            return Err(DecodeError::UnexpectedEnd);
        }
        match buf.get_u8() {
            0 => Ok(WireMsg::Spawn {
                task: u64::decode(buf)?,
                job: String::decode(buf)?,
                state: Vec::decode(buf)?,
                arg: Vec::decode(buf)?,
            }),
            1 => Ok(WireMsg::Done {
                task: u64::decode(buf)?,
                ok: bool::decode(buf)?,
                payload: Vec::decode(buf)?,
            }),
            2 => Ok(WireMsg::Shutdown),
            t => Err(DecodeError::BadTag(t)),
        }
    }
}

/// A running cluster of worker nodes plus the coordinator-side links.
pub struct Cluster {
    pub(crate) links: Vec<SendHalf>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Cluster {
    /// Launch `workers` nodes, each holding a clone of `registry`, and
    /// connect the coordinator to all of them. Returns the cluster (send
    /// side) plus the receive halves of every node link, which the
    /// runtime's forwarder threads take ownership of.
    pub fn launch<D: Wire>(
        workers: usize,
        registry: &JobRegistry<D>,
    ) -> Result<(Self, Vec<RecvHalf>), DistError> {
        assert!(workers >= 1, "a cluster needs at least one worker node");
        let net = Network::new();
        let mut handles = Vec::with_capacity(workers);
        for rank in 1..=workers {
            let listener = net
                .listen(rank as u16)
                .map_err(|e| DistError::Link(e.to_string()))?;
            let registry = registry.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("sm-dist-node-{rank}"))
                    .spawn(move || worker_main(listener, registry))
                    .expect("spawn worker node"),
            );
        }
        let mut links = Vec::with_capacity(workers);
        let mut recv_halves = Vec::with_capacity(workers);
        for rank in 1..=workers {
            let stream = net
                .connect(rank as u16)
                .map_err(|e| DistError::Link(e.to_string()))?;
            let (send, recv) = stream.split();
            links.push(send);
            recv_halves.push(recv);
        }
        Ok((
            Cluster {
                links,
                workers: handles,
            },
            recv_halves,
        ))
    }

    /// Number of worker nodes.
    pub fn size(&self) -> usize {
        self.links.len()
    }

    pub(crate) fn send(&self, node: NodeId, msg: &WireMsg) -> Result<(), DistError> {
        let link = self
            .links
            .get(node.checked_sub(1).ok_or(DistError::NoSuchNode(node))?)
            .ok_or(DistError::NoSuchNode(node))?;
        let span = sm_obs::timer::start(sm_obs::Phase::WireEncode);
        let raw = msg.to_bytes();
        if let Some(span) = span {
            span.finish_root();
        }
        let bytes = raw.len();
        sm_obs::emit(&sm_obs::TaskPath::root(), || sm_obs::EventKind::WireSent {
            node,
            bytes,
        });
        link.send(&raw).map_err(|e| DistError::Link(e.to_string()))
    }

    /// Shut every node down and join its thread.
    pub(crate) fn shutdown(self) {
        for (i, link) in self.links.iter().enumerate() {
            let raw = WireMsg::Shutdown.to_bytes();
            let bytes = raw.len();
            sm_obs::emit(&sm_obs::TaskPath::root(), || sm_obs::EventKind::WireSent {
                node: i + 1,
                bytes,
            });
            let _ = link.send(&raw);
        }
        drop(self.links);
        for w in self.workers {
            let _ = w.join();
        }
    }
}

/// The worker node main loop: one connection from the coordinator, then
/// sequential task execution until shutdown.
fn worker_main<D: Wire>(listener: sm_net::Listener, registry: JobRegistry<D>) {
    let Ok(link) = listener.accept() else { return };
    loop {
        let raw = match link.recv() {
            Ok(r) => r,
            Err(NetError::Closed) => return,
            Err(_) => return,
        };
        let span = sm_obs::timer::start(sm_obs::Phase::WireDecode);
        let msg = match WireMsg::from_bytes(&raw) {
            Ok(m) => m,
            Err(_) => return, // corrupted link: nothing sane to do
        };
        if let Some(span) = span {
            span.finish_root();
        }
        match msg {
            WireMsg::Shutdown => return,
            WireMsg::Done { .. } => return, // protocol violation
            WireMsg::Spawn {
                task,
                job,
                state,
                arg,
            } => {
                let reply = execute_task(&registry, &job, &state, &arg);
                let msg = match reply {
                    Ok(payload) => WireMsg::Done {
                        task,
                        ok: true,
                        payload,
                    },
                    Err(err) => WireMsg::Done {
                        task,
                        ok: false,
                        payload: err.into_bytes(),
                    },
                };
                let span = sm_obs::timer::start(sm_obs::Phase::WireEncode);
                let raw = msg.to_bytes();
                if let Some(span) = span {
                    span.finish_root();
                }
                if link.send(&raw).is_err() {
                    return;
                }
            }
        }
    }
}

fn execute_task<D: Wire>(
    registry: &JobRegistry<D>,
    job: &str,
    state: &[u8],
    arg: &[u8],
) -> Result<Vec<u8>, String> {
    let job_fn = registry
        .get(job)
        .ok_or_else(|| format!("unknown job '{job}'"))?;
    let mut bytes = Bytes::copy_from_slice(state);
    let mut data = D::decode_state(&mut bytes).map_err(|e| format!("bad state snapshot: {e}"))?;
    // Contain panics: a crashing job must not take the node down (and
    // silently hang the coordinator) — it reports failure like any other
    // aborted task.
    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| job_fn(&mut data, arg)));
    match run {
        Ok(Ok(())) => {}
        Ok(Err(e)) => return Err(e),
        Err(panic) => {
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "<non-string panic payload>".into());
            return Err(format!("job panicked: {msg}"));
        }
    }
    let mut out = BytesMut::new();
    data.encode_log(&mut out);
    Ok(out.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_mergeable::MCounter;

    #[test]
    fn registry_basics() {
        let mut r: JobRegistry<MCounter> = JobRegistry::new();
        assert!(r.get("inc").is_none());
        r.register("inc", |d, _| {
            d.inc();
            Ok(())
        });
        r.register("add", |d, arg| {
            d.add(arg.len() as i64);
            Ok(())
        });
        assert!(r.get("inc").is_some());
        assert_eq!(r.names(), vec!["add", "inc"]);
        let r2 = r.clone();
        assert!(r2.get("add").is_some());
    }

    #[test]
    fn wire_msg_roundtrip() {
        let msgs = [
            WireMsg::Spawn {
                task: 7,
                job: "j".into(),
                state: vec![1, 2],
                arg: vec![],
            },
            WireMsg::Done {
                task: 7,
                ok: true,
                payload: vec![9],
            },
            WireMsg::Done {
                task: 8,
                ok: false,
                payload: b"err".to_vec(),
            },
            WireMsg::Shutdown,
        ];
        for m in &msgs {
            assert_eq!(&WireMsg::from_bytes(&m.to_bytes()).unwrap(), m);
        }
    }

    #[test]
    fn wire_msg_bad_tag() {
        assert!(matches!(
            WireMsg::from_bytes(&[9]),
            Err(DecodeError::BadTag(9))
        ));
    }

    #[test]
    fn cluster_launch_and_shutdown() {
        let mut r: JobRegistry<MCounter> = JobRegistry::new();
        r.register("noop", |_, _| Ok(()));
        let (cluster, recv_halves) = Cluster::launch(3, &r).unwrap();
        assert_eq!(cluster.size(), 3);
        assert_eq!(recv_halves.len(), 3);
        cluster.shutdown();
    }
}
