//! The coordinator-side distributed runtime: `spawn` / `merge_all` /
//! `merge_any` over a cluster, with exactly the shared-memory semantics.
//!
//! Every distributed spawn takes a local **shadow fork** of the
//! coordinator's data and ships its state snapshot to the chosen node.
//! When the node reports back, the returned operation log is replayed onto
//! the shadow, and the shadow merges into the coordinator data through the
//! ordinary OT rebase — in *spawn order* for [`DistRuntime::merge_all`]
//! (deterministic, whatever the completion order across the cluster) or
//! *completion order* for [`DistRuntime::merge_any`] (explicit
//! non-determinism, as in the paper).

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

use bytes::{Bytes, BytesMut};
use crossbeam::channel::{unbounded, Receiver};
use sm_codec::Decode;
use sm_net::Network;
use sm_obs::{
    DeterminismAuditor, FlightRecorder, Metrics, MultiRecorder, ObsServer, Phase, Recorder,
    TelemetrySources,
};

use crate::cluster::{Cluster, JobRegistry, NodeId, WireMsg};
use crate::wire::Wire;
use crate::DistError;

/// Identifier of a distributed task, unique per runtime, in spawn order.
pub type DistTaskId = u64;

/// Outcome of merging one distributed task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistOutcome {
    /// Which task.
    pub task: DistTaskId,
    /// The node it ran on.
    pub node: NodeId,
    /// `Ok(ops_applied)` if the task's operations merged; `Err(message)`
    /// if the job failed (its changes were dismissed, like an abort).
    pub result: Result<usize, String>,
}

impl DistOutcome {
    /// True if the task's changes were merged.
    pub fn merged(&self) -> bool {
        self.result.is_ok()
    }
}

struct Outstanding<D> {
    task: DistTaskId,
    node: NodeId,
    shadow: D,
    /// Spawn-message send time, captured only while a recorder is
    /// installed; feeds the `wire_roundtrip` phase histogram on merge.
    sent_at: Option<Instant>,
}

/// Opt-in configuration for the live telemetry endpoint of a
/// distributed runtime ([`DistRuntime::launch_with`]).
///
/// The endpoint serves `/metrics`, `/flight` and `/health` over `network`
/// — an in-memory [`sm_net::Network`]: hold a clone and scrape it with
/// [`sm_obs::http_get`]. [`TelemetryConfig::full`] builds the standard
/// wiring (metrics + flight recorder + determinism auditor, installed as
/// the process-wide recorder for the runtime's lifetime); pass hand-built
/// [`TelemetrySources`] via [`TelemetryConfig::with_sources`] when the
/// recorders are managed elsewhere.
pub struct TelemetryConfig {
    network: Network,
    port: u16,
    sources: TelemetrySources,
    install: bool,
}

impl TelemetryConfig {
    /// The standard full wiring: fresh [`Metrics`], [`FlightRecorder`]
    /// and [`DeterminismAuditor`] served on `port` of `network`,
    /// installed as the global recorder when the runtime launches and
    /// uninstalled at [`DistRuntime::shutdown`].
    pub fn full(network: Network, port: u16, replica: impl Into<String>) -> Self {
        let mut sources = TelemetrySources::named(replica);
        sources.metrics = Some(Arc::new(Metrics::new()));
        sources.flight = Some(Arc::new(FlightRecorder::default()));
        sources.auditor = Some(Arc::new(DeterminismAuditor::new()));
        TelemetryConfig {
            network,
            port,
            sources,
            install: true,
        }
    }

    /// Serve caller-managed `sources` on `port` of `network` without
    /// touching the global recorder slot (the caller installs whatever
    /// recorder feeds those sources).
    pub fn with_sources(network: Network, port: u16, sources: TelemetrySources) -> Self {
        TelemetryConfig {
            network,
            port,
            sources,
            install: false,
        }
    }

    /// The sources the endpoint will serve (useful to keep handles on
    /// the metrics/flight/auditor built by [`TelemetryConfig::full`]).
    pub fn sources(&self) -> &TelemetrySources {
        &self.sources
    }
}

/// A live endpoint attached to a running [`DistRuntime`].
struct Telemetry {
    server: ObsServer,
    installed: bool,
}

/// The coordinator of a distributed Spawn & Merge program.
pub struct DistRuntime<D: Wire> {
    data: D,
    cluster: Cluster,
    inbox: Receiver<WireMsg>,
    forwarders: Vec<std::thread::JoinHandle<()>>,
    outstanding: Vec<Outstanding<D>>,
    buffered: VecDeque<WireMsg>,
    next_task: u64,
    journal: Option<sm_store::Store>,
    telemetry: Option<Telemetry>,
}

impl<D: Wire> DistRuntime<D> {
    /// Launch `workers` nodes (each with `registry`) and wrap `data` as the
    /// coordinator state.
    pub fn launch(workers: usize, data: D, registry: &JobRegistry<D>) -> Result<Self, DistError> {
        let (cluster, recv_halves) = Cluster::launch(workers, registry)?;
        // One forwarder thread per link funnels Done messages into a
        // single inbox so the coordinator can wait on any node.
        let (tx, rx) = unbounded();
        let mut forwarders = Vec::with_capacity(cluster.size());
        for (i, rx_link) in recv_halves.into_iter().enumerate() {
            let tx = tx.clone();
            let node = i + 1;
            forwarders.push(std::thread::spawn(move || {
                while let Ok(raw) = rx_link.recv() {
                    let bytes = raw.len();
                    sm_obs::emit(&sm_obs::TaskPath::root(), || {
                        sm_obs::EventKind::WireReceived { node, bytes }
                    });
                    let span = sm_obs::timer::start(Phase::WireDecode);
                    match WireMsg::from_bytes(&raw) {
                        Ok(msg) => {
                            if let Some(span) = span {
                                span.finish_root();
                            }
                            if tx.send(msg).is_err() {
                                return;
                            }
                        }
                        Err(_) => return,
                    }
                }
            }));
        }
        Ok(DistRuntime {
            data,
            cluster,
            inbox: rx,
            forwarders,
            outstanding: Vec::new(),
            buffered: VecDeque::new(),
            next_task: 1,
            journal: None,
            telemetry: None,
        })
    }

    /// [`launch`](DistRuntime::launch), with a live telemetry endpoint
    /// serving `/metrics`, `/flight` and `/health` for the lifetime of
    /// the runtime. When `telemetry` was built by
    /// [`TelemetryConfig::full`], its recorders are installed process-
    /// wide here and uninstalled at [`shutdown`](DistRuntime::shutdown).
    pub fn launch_with(
        workers: usize,
        data: D,
        registry: &JobRegistry<D>,
        telemetry: TelemetryConfig,
    ) -> Result<Self, DistError> {
        let mut rt = Self::launch(workers, data, registry)?;
        rt.attach_telemetry(telemetry)?;
        Ok(rt)
    }

    /// [`launch_durable`](DistRuntime::launch_durable) plus the live
    /// telemetry endpoint of [`launch_with`](DistRuntime::launch_with).
    pub fn launch_durable_with(
        workers: usize,
        data: D,
        registry: &JobRegistry<D>,
        store: &sm_store::Store,
        telemetry: TelemetryConfig,
    ) -> Result<Self, DistError> {
        let mut rt = Self::launch_durable(workers, data, registry, store)?;
        rt.attach_telemetry(telemetry)?;
        Ok(rt)
    }

    fn attach_telemetry(&mut self, config: TelemetryConfig) -> Result<(), DistError> {
        if config.install {
            let sources = &config.sources;
            let mut sinks: Vec<Arc<dyn Recorder>> = Vec::new();
            if let Some(m) = &sources.metrics {
                sinks.push(m.clone());
            }
            if let Some(f) = &sources.flight {
                sinks.push(f.clone());
            }
            if let Some(a) = &sources.auditor {
                sinks.push(a.clone());
            }
            sm_obs::install(Arc::new(MultiRecorder::new(sinks)));
        }
        let server = ObsServer::start(&config.network, config.port, config.sources)
            .map_err(|e| DistError::Link(format!("telemetry endpoint: {e}")))?;
        self.telemetry = Some(Telemetry {
            server,
            installed: config.install,
        });
        Ok(())
    }

    /// The port of the attached telemetry endpoint, if one is serving.
    pub fn telemetry_port(&self) -> Option<u16> {
        self.telemetry.as_ref().map(|t| t.server.port())
    }

    /// [`launch`](DistRuntime::launch), with every coordinator merge
    /// journaled into `store` — the distributed runtime's durability
    /// story. On a coordinator crash, [`sm_store::Store::recover`] the
    /// data and `launch_durable` again with a fresh cluster: workers are
    /// stateless between jobs (each spawn re-ships the state snapshot),
    /// so a restarted coordinator rejoins exactly where the journal ends.
    ///
    /// `store` must be fresh (a genesis baseline is written) or just
    /// recovered; `data` must be the corresponding initial or recovered
    /// state.
    pub fn launch_durable(
        workers: usize,
        data: D,
        registry: &JobRegistry<D>,
        store: &sm_store::Store,
    ) -> Result<Self, DistError> {
        store.begin(&data)?;
        let mut rt = Self::launch(workers, data, registry)?;
        rt.journal = Some(store.clone());
        Ok(rt)
    }

    /// Read access to the coordinator's data.
    pub fn data(&self) -> &D {
        &self.data
    }

    /// Mutable access — coordinator-local edits participate in the OT
    /// rebase exactly like a parent task's edits do.
    pub fn data_mut(&mut self) -> &mut D {
        &mut self.data
    }

    /// Number of spawned-but-unmerged tasks.
    pub fn outstanding(&self) -> usize {
        self.outstanding.len()
    }

    /// Distributed **Spawn**: run `job` (with `arg`) on `node` over a copy
    /// of the current data.
    pub fn spawn(&mut self, node: NodeId, job: &str, arg: &[u8]) -> Result<DistTaskId, DistError> {
        if node == 0 || node > self.cluster.size() {
            return Err(DistError::NoSuchNode(node));
        }
        let task = self.next_task;
        self.next_task += 1;
        let shadow = self.data.fork();
        let mut state = BytesMut::new();
        shadow.encode_state(&mut state);
        self.cluster.send(
            node,
            &WireMsg::Spawn {
                task,
                job: job.to_string(),
                state: state.to_vec(),
                arg: arg.to_vec(),
            },
        )?;
        self.outstanding.push(Outstanding {
            task,
            node,
            shadow,
            sent_at: sm_obs::is_enabled().then(Instant::now),
        });
        Ok(task)
    }

    /// Distributed **MergeAll**: wait for every outstanding task and merge
    /// them in **spawn order** — deterministic, independent of which node
    /// finishes first.
    pub fn merge_all(&mut self) -> Result<Vec<DistOutcome>, DistError> {
        let mut outcomes = Vec::with_capacity(self.outstanding.len());
        while !self.outstanding.is_empty() {
            let task = self.outstanding[0].task;
            let msg = self.wait_for(Some(task))?;
            outcomes.push(self.complete(msg)?);
        }
        Ok(outcomes)
    }

    /// Distributed **MergeAny**: wait for the first completion (arrival
    /// order — non-deterministic) and merge it. `Ok(None)` when nothing is
    /// outstanding.
    pub fn merge_any(&mut self) -> Result<Option<DistOutcome>, DistError> {
        if self.outstanding.is_empty() {
            return Ok(None);
        }
        let msg = self.wait_for(None)?;
        Ok(Some(self.complete(msg)?))
    }

    /// Wait for the Done of `task` (or any outstanding task when `None`),
    /// buffering everything else.
    fn wait_for(&mut self, task: Option<DistTaskId>) -> Result<WireMsg, DistError> {
        let matches = |m: &WireMsg| match (m, task) {
            (WireMsg::Done { task: t, .. }, Some(want)) => *t == want,
            (WireMsg::Done { .. }, None) => true,
            _ => false,
        };
        if let Some(pos) = self.buffered.iter().position(&matches) {
            return Ok(self.buffered.remove(pos).expect("position valid"));
        }
        loop {
            let msg = self
                .inbox
                .recv()
                .map_err(|_| DistError::Link("all node links closed".into()))?;
            if matches(&msg) {
                return Ok(msg);
            }
            self.buffered.push_back(msg);
        }
    }

    fn complete(&mut self, msg: WireMsg) -> Result<DistOutcome, DistError> {
        let WireMsg::Done { task, ok, payload } = msg else {
            return Err(DistError::Protocol("expected Done".into()));
        };
        let pos = self
            .outstanding
            .iter()
            .position(|o| o.task == task)
            .ok_or_else(|| DistError::Protocol(format!("Done for unknown task {task}")))?;
        let Outstanding {
            node,
            mut shadow,
            sent_at,
            ..
        } = self.outstanding.remove(pos);
        let path = sm_obs::TaskPath::root().child(task);
        if let Some(sent_at) = sent_at {
            // Spawn message out → Done message merged back: the full
            // distributed round trip, including remote execution.
            let nanos = sent_at.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
            sm_obs::timer::observe(&path, Phase::WireRoundtrip, nanos);
        }
        if !ok {
            // Remote job failed: dismiss the shadow (abort semantics).
            return Ok(DistOutcome {
                task,
                node,
                result: Err(String::from_utf8_lossy(&payload).into_owned()),
            });
        }
        let mut bytes = Bytes::copy_from_slice(&payload);
        let applied = shadow.apply_log(&mut bytes)?;
        let stats = self
            .data
            .merge(&shadow)
            .map_err(|e| DistError::Apply(e.to_string()))?;
        sm_obs::timer::observe(&path, Phase::RebaseDelta, stats.delta_nanos);
        sm_obs::timer::observe(&path, Phase::RebaseCompact, stats.compact_nanos);
        sm_obs::timer::observe(&path, Phase::RebaseGrid, stats.grid_nanos);
        sm_obs::timer::observe(&path, Phase::StateApply, stats.apply_nanos);
        if let Some(journal) = &self.journal {
            // One WAL record per distributed merge, attributed to the
            // task's pseudo-path (root → task id). Coordinator-local
            // edits since the previous commit ride in the same record.
            journal.commit(&self.data, &path)?;
        }
        Ok(DistOutcome {
            task,
            node,
            result: Ok(applied),
        })
    }

    /// Shut the cluster down and return the final coordinator data.
    ///
    /// Outstanding tasks are merged first (implicit MergeAll), mirroring
    /// "a task is not completed unless all its children have been merged".
    pub fn shutdown(mut self) -> Result<D, DistError> {
        self.merge_all()?;
        if let Some(journal) = self.journal.take() {
            // Journal any trailing coordinator-local edits and make the
            // whole log durable before the cluster goes away.
            journal.commit_outstanding(&self.data, &sm_obs::TaskPath::root())?;
        }
        self.cluster.shutdown();
        for f in self.forwarders {
            let _ = f.join();
        }
        if let Some(telemetry) = self.telemetry.take() {
            telemetry.server.stop();
            if telemetry.installed {
                sm_obs::uninstall();
            }
        }
        Ok(self.data)
    }

    /// Round-robin node assignment helper: the node for the `i`-th task.
    pub fn node_for(&self, i: usize) -> NodeId {
        (i % self.cluster.size()) + 1
    }
}
