//! The coordinator-side distributed runtime: `spawn` / `merge_all` /
//! `merge_any` over a cluster, with exactly the shared-memory semantics.
//!
//! Every distributed spawn takes a local **shadow fork** of the
//! coordinator's data and ships its state snapshot to the chosen node.
//! When the node reports back, the returned operation log is replayed onto
//! the shadow, and the shadow merges into the coordinator data through the
//! ordinary OT rebase — in *spawn order* for [`DistRuntime::merge_all`]
//! (deterministic, whatever the completion order across the cluster) or
//! *completion order* for [`DistRuntime::merge_any`] (explicit
//! non-determinism, as in the paper).

use std::collections::VecDeque;

use bytes::{Bytes, BytesMut};
use crossbeam::channel::{unbounded, Receiver};
use sm_codec::Decode;

use crate::cluster::{Cluster, JobRegistry, NodeId, WireMsg};
use crate::wire::Wire;
use crate::DistError;

/// Identifier of a distributed task, unique per runtime, in spawn order.
pub type DistTaskId = u64;

/// Outcome of merging one distributed task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistOutcome {
    /// Which task.
    pub task: DistTaskId,
    /// The node it ran on.
    pub node: NodeId,
    /// `Ok(ops_applied)` if the task's operations merged; `Err(message)`
    /// if the job failed (its changes were dismissed, like an abort).
    pub result: Result<usize, String>,
}

impl DistOutcome {
    /// True if the task's changes were merged.
    pub fn merged(&self) -> bool {
        self.result.is_ok()
    }
}

struct Outstanding<D> {
    task: DistTaskId,
    node: NodeId,
    shadow: D,
}

/// The coordinator of a distributed Spawn & Merge program.
pub struct DistRuntime<D: Wire> {
    data: D,
    cluster: Cluster,
    inbox: Receiver<WireMsg>,
    forwarders: Vec<std::thread::JoinHandle<()>>,
    outstanding: Vec<Outstanding<D>>,
    buffered: VecDeque<WireMsg>,
    next_task: u64,
    journal: Option<sm_store::Store>,
}

impl<D: Wire> DistRuntime<D> {
    /// Launch `workers` nodes (each with `registry`) and wrap `data` as the
    /// coordinator state.
    pub fn launch(workers: usize, data: D, registry: &JobRegistry<D>) -> Result<Self, DistError> {
        let (cluster, recv_halves) = Cluster::launch(workers, registry)?;
        // One forwarder thread per link funnels Done messages into a
        // single inbox so the coordinator can wait on any node.
        let (tx, rx) = unbounded();
        let mut forwarders = Vec::with_capacity(cluster.size());
        for (i, rx_link) in recv_halves.into_iter().enumerate() {
            let tx = tx.clone();
            let node = i + 1;
            forwarders.push(std::thread::spawn(move || {
                while let Ok(raw) = rx_link.recv() {
                    let bytes = raw.len();
                    sm_obs::emit(&sm_obs::TaskPath::root(), || {
                        sm_obs::EventKind::WireReceived { node, bytes }
                    });
                    match WireMsg::from_bytes(&raw) {
                        Ok(msg) => {
                            if tx.send(msg).is_err() {
                                return;
                            }
                        }
                        Err(_) => return,
                    }
                }
            }));
        }
        Ok(DistRuntime {
            data,
            cluster,
            inbox: rx,
            forwarders,
            outstanding: Vec::new(),
            buffered: VecDeque::new(),
            next_task: 1,
            journal: None,
        })
    }

    /// [`launch`](DistRuntime::launch), with every coordinator merge
    /// journaled into `store` — the distributed runtime's durability
    /// story. On a coordinator crash, [`sm_store::Store::recover`] the
    /// data and `launch_durable` again with a fresh cluster: workers are
    /// stateless between jobs (each spawn re-ships the state snapshot),
    /// so a restarted coordinator rejoins exactly where the journal ends.
    ///
    /// `store` must be fresh (a genesis baseline is written) or just
    /// recovered; `data` must be the corresponding initial or recovered
    /// state.
    pub fn launch_durable(
        workers: usize,
        data: D,
        registry: &JobRegistry<D>,
        store: &sm_store::Store,
    ) -> Result<Self, DistError> {
        store.begin(&data)?;
        let mut rt = Self::launch(workers, data, registry)?;
        rt.journal = Some(store.clone());
        Ok(rt)
    }

    /// Read access to the coordinator's data.
    pub fn data(&self) -> &D {
        &self.data
    }

    /// Mutable access — coordinator-local edits participate in the OT
    /// rebase exactly like a parent task's edits do.
    pub fn data_mut(&mut self) -> &mut D {
        &mut self.data
    }

    /// Number of spawned-but-unmerged tasks.
    pub fn outstanding(&self) -> usize {
        self.outstanding.len()
    }

    /// Distributed **Spawn**: run `job` (with `arg`) on `node` over a copy
    /// of the current data.
    pub fn spawn(&mut self, node: NodeId, job: &str, arg: &[u8]) -> Result<DistTaskId, DistError> {
        if node == 0 || node > self.cluster.size() {
            return Err(DistError::NoSuchNode(node));
        }
        let task = self.next_task;
        self.next_task += 1;
        let shadow = self.data.fork();
        let mut state = BytesMut::new();
        shadow.encode_state(&mut state);
        self.cluster.send(
            node,
            &WireMsg::Spawn {
                task,
                job: job.to_string(),
                state: state.to_vec(),
                arg: arg.to_vec(),
            },
        )?;
        self.outstanding.push(Outstanding { task, node, shadow });
        Ok(task)
    }

    /// Distributed **MergeAll**: wait for every outstanding task and merge
    /// them in **spawn order** — deterministic, independent of which node
    /// finishes first.
    pub fn merge_all(&mut self) -> Result<Vec<DistOutcome>, DistError> {
        let mut outcomes = Vec::with_capacity(self.outstanding.len());
        while !self.outstanding.is_empty() {
            let task = self.outstanding[0].task;
            let msg = self.wait_for(Some(task))?;
            outcomes.push(self.complete(msg)?);
        }
        Ok(outcomes)
    }

    /// Distributed **MergeAny**: wait for the first completion (arrival
    /// order — non-deterministic) and merge it. `Ok(None)` when nothing is
    /// outstanding.
    pub fn merge_any(&mut self) -> Result<Option<DistOutcome>, DistError> {
        if self.outstanding.is_empty() {
            return Ok(None);
        }
        let msg = self.wait_for(None)?;
        Ok(Some(self.complete(msg)?))
    }

    /// Wait for the Done of `task` (or any outstanding task when `None`),
    /// buffering everything else.
    fn wait_for(&mut self, task: Option<DistTaskId>) -> Result<WireMsg, DistError> {
        let matches = |m: &WireMsg| match (m, task) {
            (WireMsg::Done { task: t, .. }, Some(want)) => *t == want,
            (WireMsg::Done { .. }, None) => true,
            _ => false,
        };
        if let Some(pos) = self.buffered.iter().position(&matches) {
            return Ok(self.buffered.remove(pos).expect("position valid"));
        }
        loop {
            let msg = self
                .inbox
                .recv()
                .map_err(|_| DistError::Link("all node links closed".into()))?;
            if matches(&msg) {
                return Ok(msg);
            }
            self.buffered.push_back(msg);
        }
    }

    fn complete(&mut self, msg: WireMsg) -> Result<DistOutcome, DistError> {
        let WireMsg::Done { task, ok, payload } = msg else {
            return Err(DistError::Protocol("expected Done".into()));
        };
        let pos = self
            .outstanding
            .iter()
            .position(|o| o.task == task)
            .ok_or_else(|| DistError::Protocol(format!("Done for unknown task {task}")))?;
        let Outstanding {
            node, mut shadow, ..
        } = self.outstanding.remove(pos);
        if !ok {
            // Remote job failed: dismiss the shadow (abort semantics).
            return Ok(DistOutcome {
                task,
                node,
                result: Err(String::from_utf8_lossy(&payload).into_owned()),
            });
        }
        let mut bytes = Bytes::copy_from_slice(&payload);
        let applied = shadow.apply_log(&mut bytes)?;
        self.data
            .merge(&shadow)
            .map_err(|e| DistError::Apply(e.to_string()))?;
        if let Some(journal) = &self.journal {
            // One WAL record per distributed merge, attributed to the
            // task's pseudo-path (root → task id). Coordinator-local
            // edits since the previous commit ride in the same record.
            journal.commit(&self.data, &sm_obs::TaskPath::root().child(task))?;
        }
        Ok(DistOutcome {
            task,
            node,
            result: Ok(applied),
        })
    }

    /// Shut the cluster down and return the final coordinator data.
    ///
    /// Outstanding tasks are merged first (implicit MergeAll), mirroring
    /// "a task is not completed unless all its children have been merged".
    pub fn shutdown(mut self) -> Result<D, DistError> {
        self.merge_all()?;
        if let Some(journal) = self.journal.take() {
            // Journal any trailing coordinator-local edits and make the
            // whole log durable before the cluster goes away.
            journal.commit_outstanding(&self.data, &sm_obs::TaskPath::root())?;
        }
        self.cluster.shutdown();
        for f in self.forwarders {
            let _ = f.join();
        }
        Ok(self.data)
    }

    /// Round-robin node assignment helper: the node for the `i`-th task.
    pub fn node_for(&self, i: usize) -> NodeId {
        (i % self.cluster.size()) + 1
    }
}
