//! Crash recovery: snapshot load, torn-tail repair, journal replay, and
//! digest-chain verification.
//!
//! The invariant recovery enforces is *verified prefix or nothing*:
//!
//! 1. The highest decodable snapshot is the base state. When a newer
//!    delta snapshot pairs with it (decodes cleanly against it), the
//!    delta shortens the replay; a delta that fails *any* check is
//!    silently skipped — deltas accelerate recovery, they never gate it.
//! 2. The WAL suffix (commits with `seq` above the base) replays in
//!    strict sequence order through the ordinary OT apply path
//!    ([`Persist::apply_log`] or its prepared equivalent) — the same
//!    code path a live merge uses, which is why the reconstructed state
//!    is bit-identical to the original run's.
//! 3. Every replayed record's FNV digest chain is recomputed and checked
//!    against the journaled value; any mismatch refuses recovery
//!    ([`StoreError::DigestMismatch`]) rather than starting from silently
//!    divergent state.
//! 4. A frame error in the **final** segment is a torn write: the tail is
//!    truncated and the clean prefix wins. The same error anywhere else
//!    means interior corruption and fails closed
//!    ([`StoreError::Corrupt`]).
//!
//! # Parallel replay
//!
//! By default [`Store::recover`] fans the per-segment work — file read,
//! frame CRC, record decode, and digest-chain verification — out on a
//! task pool, one job per WAL segment. A single coordinator then links
//! the per-segment chains across segment boundaries in strict `seq`
//! order and replays the prepared logs through
//! [`Persist::replay_prepared`], which structures override to amortize
//! work across consecutive commits (e.g. the list replay session). The
//! digest chains are computed over the journaled *bytes*, so the chain
//! verification — and therefore the accepted prefix — is byte-for-byte
//! the same as the serial path's.
//!
//! Chain verification splits by induction: inside a segment each commit
//! is checked against its *predecessor's stored* chain; the coordinator
//! re-verifies only the first commit per child path per segment against
//! the globally accumulated chain. If the boundary link holds, every
//! stored predecessor inside the segment was already proven correct, so
//! the intra-segment checks carry full strength.
//!
//! The one observable difference is error *selection* under multiple
//! independent corruptions: the parallel path verifies all chains before
//! applying any operation, so a digest mismatch in a later segment is
//! reported even if an earlier commit would have failed replay first.
//! Either way recovery fails closed; the `serial-recovery` feature
//! restores the exact serial interleaving.

use std::collections::BTreeMap;
use std::fs::{self, OpenOptions};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use bytes::{Buf, Bytes};
use parking_lot::{Condvar, Mutex};
use sm_core::Pool;
use sm_mergeable::{Persist, PreparedLog, ReplayError};
use sm_net::frame::Frames;
use sm_obs::{emit, EventKind, TaskPath};

use crate::store::{list_files, Store};
use crate::wal::{chain_update, Record, FNV_OFFSET};
use crate::StoreError;

/// The outcome of a successful [`Store::recover`].
#[derive(Debug)]
pub struct Recovered<D> {
    /// The reconstructed state: snapshot plus replayed journal suffix.
    pub data: D,
    /// Sequence of the snapshot (or delta snapshot) recovery started
    /// from (0 = genesis).
    pub snapshot_seq: u64,
    /// Sequence of the last replayed commit (equals `snapshot_seq` when
    /// the journal suffix was empty).
    pub last_seq: u64,
    /// Operations replayed from the journal suffix.
    pub replayed_ops: u64,
    /// Bytes of torn tail frame truncated during repair (0 = clean).
    pub torn_bytes: u64,
    /// Verified digest chain per child path, as of `last_seq` —
    /// exposed so differential tests can compare recovery paths
    /// chain-for-chain.
    pub chains: BTreeMap<Vec<u64>, u64>,
}

/// The replay starting point: decoded base state, its digest chains,
/// and the sequence it covers. Either the newest full snapshot or a
/// delta snapshot reconstructed against it.
struct ReplayBase<D> {
    data: D,
    chains: BTreeMap<Vec<u64>, u64>,
    seq: u64,
}

/// Locate and decode the replay base, or `None` for a fresh store.
///
/// The highest decodable full snapshot wins; a newer delta snapshot
/// upgrades it when — and only when — the delta names that snapshot as
/// its base and decodes cleanly against it. Any delta defect (torn
/// file, wrong base, decode failure) silently falls back to the full
/// snapshot plus a longer replay.
fn load_base<D: Persist>(dir: &Path) -> Result<Option<ReplayBase<D>>, StoreError> {
    let snaps = list_files(dir, "snap-")?;
    let wals = list_files(dir, "wal-")?;
    if snaps.is_empty() {
        if !wals.is_empty() {
            return Err(StoreError::Corrupt(
                "WAL segments present but no snapshot: the genesis baseline is gone".into(),
            ));
        }
        return Ok(None);
    }

    // Highest decodable snapshot wins. Snapshots are written to a
    // temp file and renamed, so normally the newest is valid; if it
    // is not, an older one may still give a usable (if longer) replay.
    let mut base = None;
    for (seq, path) in snaps.iter().rev() {
        let bytes = fs::read(path)?;
        let mut frames = Frames::new(&bytes);
        let Some((_, payload)) = frames.next() else {
            continue;
        };
        if let Ok(Record::Snapshot(snap)) = Record::from_bytes(payload) {
            if snap.seq == *seq {
                base = Some(snap);
                break;
            }
        }
    }
    let Some(snap) = base else {
        return Err(StoreError::Corrupt(
            "no snapshot file decodes cleanly".into(),
        ));
    };

    let mut state = snap.state.clone();
    let full = D::decode_state(&mut state)
        .map_err(|e| StoreError::Corrupt(format!("snapshot state: {e}")))?;

    // Delta upgrade: newest delta that names this snapshot as its base
    // and decodes cleanly. Failures skip silently — the full snapshot
    // below is always sufficient.
    for (seq, path) in list_files(dir, "snap-delta-")?.iter().rev() {
        if *seq <= snap.seq {
            continue;
        }
        let Ok(bytes) = fs::read(path) else {
            continue;
        };
        let mut frames = Frames::new(&bytes);
        let Some((_, payload)) = frames.next() else {
            continue;
        };
        let Ok(Record::SnapshotDelta(delta)) = Record::from_bytes(payload) else {
            continue;
        };
        if delta.seq != *seq || delta.base_seq != snap.seq {
            continue;
        }
        let mut delta_bytes = delta.delta.clone();
        let Ok(data) = D::decode_state_delta(&full, &mut delta_bytes) else {
            continue;
        };
        if delta_bytes.has_remaining() {
            continue;
        }
        return Ok(Some(ReplayBase {
            data,
            chains: delta.chains.iter().cloned().collect(),
            seq: delta.seq,
        }));
    }

    Ok(Some(ReplayBase {
        data: full,
        chains: snap.chains.iter().cloned().collect(),
        seq: snap.seq,
    }))
}

/// One commit scanned off a WAL segment by a recovery worker.
struct ScannedCommit<D> {
    seq: u64,
    child: Vec<u64>,
    /// The journaled chain value. Verified against the in-segment
    /// predecessor by the worker; the coordinator re-verifies it from
    /// the global chain when this is the child's first commit in the
    /// segment ([`ScannedCommit::boundary_ops`]).
    stored_chain: u64,
    /// Raw op bytes, kept only for the child's first commit in the
    /// segment so the coordinator can recompute the boundary link.
    boundary_ops: Option<Bytes>,
    prepared: Box<dyn PreparedLog<D>>,
}

/// Everything a worker learned about one segment. Commits precede the
/// error/trailer positionally: the coordinator consumes `commits`
/// first, then surfaces `error`, then `trailer`, reproducing the
/// serial scan order within the segment.
struct SegmentScan<D> {
    commits: Vec<ScannedCommit<D>>,
    error: Option<StoreError>,
    /// `(message, clean_offset, total_len)` when the frame stream ended
    /// in an error — a torn tail if this is the final segment.
    trailer: Option<(String, usize, usize)>,
}

/// Scan one WAL segment: read, CRC-check frames, decode records, verify
/// intra-segment digest chains, and pre-decode each commit's ops into a
/// [`PreparedLog`]. Runs on pool workers; touches no shared state.
fn scan_segment<D: Persist + 'static>(path: &Path, min_seq: u64) -> SegmentScan<D> {
    let mut scan = SegmentScan {
        commits: Vec::new(),
        error: None,
        trailer: None,
    };
    let bytes = match fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) => {
            scan.error = Some(StoreError::Io(e));
            return scan;
        }
    };
    let mut frames = Frames::new(&bytes);
    let mut last_seq: Option<u64> = None;
    let mut seg_chains: BTreeMap<Vec<u64>, u64> = BTreeMap::new();
    for (_, payload) in frames.by_ref() {
        let record = match Record::from_bytes(payload) {
            Ok(record) => record,
            Err(e) => {
                scan.error = Some(StoreError::Corrupt(format!("WAL record: {e}")));
                return scan;
            }
        };
        let Record::Commit(commit) = record else {
            scan.error = Some(StoreError::Corrupt(
                "snapshot record inside a WAL segment".into(),
            ));
            return scan;
        };
        if commit.seq <= min_seq {
            // A pre-snapshot segment that escaped GC (crash between
            // snapshot and segment deletion): already folded into the
            // base, skip.
            continue;
        }
        if let Some(prev) = last_seq {
            if commit.seq != prev + 1 {
                scan.error = Some(StoreError::Corrupt(format!(
                    "commit sequence gap: expected {}, found {}",
                    prev + 1,
                    commit.seq
                )));
                return scan;
            }
        }
        // First commit per child in this segment: the predecessor chain
        // lives in an earlier segment (or the snapshot), so keep the op
        // bytes and let the coordinator verify the boundary link. Later
        // commits verify against the predecessor's *stored* chain — by
        // induction from the boundary, that predecessor is proven.
        let boundary_ops = match seg_chains.get(&commit.child) {
            Some(&prev_chain) => {
                let computed = chain_update(prev_chain, commit.seq, commit.ops.as_slice());
                if computed != commit.chain {
                    scan.error = Some(StoreError::DigestMismatch {
                        seq: commit.seq,
                        stored: commit.chain,
                        computed,
                    });
                    return scan;
                }
                None
            }
            None => Some(commit.ops.clone()),
        };
        seg_chains.insert(commit.child.clone(), commit.chain);
        last_seq = Some(commit.seq);
        scan.commits.push(ScannedCommit {
            seq: commit.seq,
            child: commit.child,
            stored_chain: commit.chain,
            boundary_ops,
            prepared: D::decode_log_prepared(commit.ops, commit.ops_count),
        });
    }
    if let Some(trailer) = frames.trailer() {
        scan.trailer = Some((trailer.to_string(), frames.offset(), bytes.len()));
    }
    scan
}

impl Store {
    /// Recover the journaled state from disk, priming this store to
    /// continue journaling right after it.
    ///
    /// Returns `Ok(None)` when the directory holds no journal (a fresh
    /// store — call [`begin`](Store::begin), typically via
    /// [`run_with_store`](crate::run_with_store)). Fails closed on
    /// interior corruption or digest mismatch; see the module docs for
    /// the exact rules.
    ///
    /// Segment scanning fans out on a task pool unless the crate is
    /// built with the `serial-recovery` feature, which pins the
    /// original single-threaded replay ([`Store::recover_serial`]).
    pub fn recover<D: Persist + 'static>(&self) -> Result<Option<Recovered<D>>, StoreError> {
        #[cfg(feature = "serial-recovery")]
        {
            self.recover_telemetry(|s| s.recover_serial_inner::<D>())
        }
        #[cfg(not(feature = "serial-recovery"))]
        {
            self.recover_telemetry(|s| s.recover_parallel_inner::<D>())
        }
    }

    /// [`Store::recover`] pinned to the single-threaded replay path.
    /// Always compiled — differential tests replay the same journal
    /// through both paths and compare states and digest chains.
    pub fn recover_serial<D: Persist>(&self) -> Result<Option<Recovered<D>>, StoreError> {
        self.recover_telemetry(|s| s.recover_serial_inner::<D>())
    }

    /// Shared recovery telemetry: times the whole pass, emits
    /// [`EventKind::RecoveryReplayed`] on success and
    /// [`EventKind::RecoveryFailed`] on a failed-closed refusal.
    fn recover_telemetry<D>(
        &self,
        run: impl FnOnce(&Self) -> Result<Option<Recovered<D>>, StoreError>,
    ) -> Result<Option<Recovered<D>>, StoreError> {
        let t0 = sm_obs::is_enabled().then(Instant::now);
        let result = run(self);
        match &result {
            Ok(recovered) => {
                if let (Some(t0), Some(r)) = (t0, recovered.as_ref()) {
                    let replay_nanos = t0.elapsed().as_nanos() as u64;
                    emit(&TaskPath::root(), || EventKind::RecoveryReplayed {
                        replayed_ops: r.replayed_ops as usize,
                        torn_bytes: r.torn_bytes as usize,
                        replay_nanos,
                    });
                    sm_obs::timer::observe(
                        &TaskPath::root(),
                        sm_obs::Phase::RecoveryReplay,
                        replay_nanos,
                    );
                }
            }
            // Failed-closed recovery is an anomaly: surface it in the
            // event stream so the flight recorder dumps its rings.
            Err(err) => {
                let reason = match err {
                    StoreError::Io(e) => format!("Io: {e}"),
                    StoreError::Corrupt(msg) => format!("Corrupt: {msg}"),
                    StoreError::DigestMismatch { seq, .. } => {
                        format!("DigestMismatch at seq {seq}")
                    }
                    StoreError::Replay { seq, .. } => format!("Replay failed at seq {seq}"),
                };
                emit(&TaskPath::root(), || EventKind::RecoveryFailed { reason });
            }
        }
        result
    }

    fn recover_serial_inner<D: Persist>(&self) -> Result<Option<Recovered<D>>, StoreError> {
        let mut inner = self.inner.lock();
        let Some(base) = load_base::<D>(&inner.dir)? else {
            return Ok(None);
        };
        let wals = list_files(&inner.dir, "wal-")?;

        let mut data = base.data;
        let mut chains = base.chains;
        let mut last_seq = base.seq;
        let mut replayed_ops = 0u64;
        let mut torn_bytes = 0u64;

        let last_segment = wals.len().saturating_sub(1);
        for (i, (_, path)) in wals.iter().enumerate() {
            let bytes = fs::read(path)?;
            let mut frames = Frames::new(&bytes);
            for (_, payload) in frames.by_ref() {
                let record = Record::from_bytes(payload)
                    .map_err(|e| StoreError::Corrupt(format!("WAL record: {e}")))?;
                let Record::Commit(commit) = record else {
                    return Err(StoreError::Corrupt(
                        "snapshot record inside a WAL segment".into(),
                    ));
                };
                if commit.seq <= base.seq {
                    // A pre-snapshot segment that escaped GC (crash
                    // between snapshot and segment deletion): already
                    // folded into the snapshot, skip.
                    continue;
                }
                if commit.seq != last_seq + 1 {
                    return Err(StoreError::Corrupt(format!(
                        "commit sequence gap: expected {}, found {}",
                        last_seq + 1,
                        commit.seq
                    )));
                }
                let prev = chains.get(&commit.child).copied().unwrap_or(FNV_OFFSET);
                let computed = chain_update(prev, commit.seq, commit.ops.as_slice());
                if computed != commit.chain {
                    return Err(StoreError::DigestMismatch {
                        seq: commit.seq,
                        stored: commit.chain,
                        computed,
                    });
                }
                let mut ops = commit.ops.clone();
                let applied = data.apply_log(&mut ops).map_err(|e| StoreError::Replay {
                    seq: commit.seq,
                    error: e,
                })?;
                if applied as u64 != commit.ops_count || ops.has_remaining() {
                    return Err(StoreError::Corrupt(format!(
                        "commit {} replayed {applied} of {} ops with {} trailing bytes",
                        commit.seq,
                        commit.ops_count,
                        ops.remaining()
                    )));
                }
                chains.insert(commit.child.clone(), computed);
                last_seq = commit.seq;
                replayed_ops += applied as u64;
                // Reproduce the journaling protocol's seal points: the
                // original run sealed its history at every commit, so the
                // replayed structure must carry the same fuse barriers.
                // This also keeps replay linear — without the barrier,
                // tail fusion accretes one ever-growing span op that is
                // rebuilt on every replayed operation.
                data.seal_history();
            }
            if let Some(trailer) = frames.trailer() {
                if i != last_segment {
                    return Err(StoreError::Corrupt(format!(
                        "frame error inside non-final segment {}: {trailer}",
                        path.display()
                    )));
                }
                // Torn tail: truncate the file back to the clean prefix.
                torn_bytes = (bytes.len() - frames.offset()) as u64;
                let file = OpenOptions::new().write(true).open(path)?;
                file.set_len(frames.offset() as u64)?;
                file.sync_data()?;
            }
        }

        // Prime the store to continue journaling after the recovered
        // prefix. The recovered data's own history marks are its absolute
        // positions in the *new* numbering (snapshot state + replayed
        // ops), which is what future committed-slice exports are relative
        // to.
        data.seal_history();
        let mut marks = Vec::new();
        data.history_marks(&mut marks);
        inner.last_marks = marks;
        inner.chains = chains.clone();
        inner.next_seq = last_seq + 1;
        inner.started = true;
        inner.bounds.clear();
        inner.ops_since_snapshot = 0;
        inner.delta_base = None;
        inner.snapshots_since_full = 0;
        inner.open_segment(last_seq + 1)?;

        Ok(Some(Recovered {
            data,
            snapshot_seq: base.seq,
            last_seq,
            replayed_ops,
            torn_bytes,
            chains,
        }))
    }

    #[cfg_attr(feature = "serial-recovery", allow(dead_code))]
    fn recover_parallel_inner<D: Persist + 'static>(
        &self,
    ) -> Result<Option<Recovered<D>>, StoreError> {
        let mut inner = self.inner.lock();
        let Some(base) = load_base::<D>(&inner.dir)? else {
            return Ok(None);
        };
        let wals = list_files(&inner.dir, "wal-")?;
        let segments = wals.len();

        // ---- Fan-out: one scan job per segment ------------------------
        let decode_span = sm_obs::timer::start(sm_obs::Phase::RecoveryDecode);
        let hw = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        let scans: Vec<SegmentScan<D>> = if segments <= 1 || hw <= 1 {
            // Nothing to overlap (single segment, or a single hardware
            // thread where fan-out only adds spawn latency): scan inline,
            // skipping the pool round-trip. The per-segment verification
            // split is identical either way.
            wals.iter()
                .map(|(_, path)| scan_segment::<D>(path, base.seq))
                .collect()
        } else {
            type Slots<D> = (Vec<Option<SegmentScan<D>>>, usize);
            let barrier: Arc<(Mutex<Slots<D>>, Condvar)> = Arc::new((
                Mutex::new(((0..segments).map(|_| None).collect(), 0)),
                Condvar::new(),
            ));
            let pool = Pool::new();
            for (i, (_, path)) in wals.iter().enumerate() {
                let path = path.clone();
                let min_seq = base.seq;
                let barrier = Arc::clone(&barrier);
                pool.execute(move || {
                    let scan = scan_segment::<D>(&path, min_seq);
                    let (slots, cvar) = &*barrier;
                    let mut guard = slots.lock();
                    guard.0[i] = Some(scan);
                    guard.1 += 1;
                    cvar.notify_one();
                });
            }
            let (slots, cvar) = &*barrier;
            let mut guard = slots.lock();
            while guard.1 < segments {
                cvar.wait(&mut guard);
            }
            std::mem::take(&mut guard.0)
                .into_iter()
                .map(|scan| scan.expect("barrier counted every segment"))
                .collect()
        };
        if let Some(span) = decode_span {
            span.finish_root();
        }
        if segments > 0 {
            emit(&TaskPath::root(), || EventKind::RecoverySegmentsScanned {
                segments,
            });
        }

        // ---- Coordinator: link chains in seq order --------------------
        let mut chains = base.chains;
        let mut last_seq = base.seq;
        let mut items: Vec<Box<dyn PreparedLog<D>>> = Vec::new();
        let mut meta: Vec<u64> = Vec::new(); // journal seq per item
        let mut torn: Option<(PathBuf, usize, u64)> = None;

        let last_segment = segments.saturating_sub(1);
        for (i, scan) in scans.into_iter().enumerate() {
            for commit in scan.commits {
                if commit.seq != last_seq + 1 {
                    return Err(StoreError::Corrupt(format!(
                        "commit sequence gap: expected {}, found {}",
                        last_seq + 1,
                        commit.seq
                    )));
                }
                // Boundary link: the child's first commit in this
                // segment, verified against the global chain. All later
                // in-segment commits were verified by the worker against
                // this one (transitively), so this check anchors them.
                if let Some(ops) = &commit.boundary_ops {
                    let prev = chains.get(&commit.child).copied().unwrap_or(FNV_OFFSET);
                    let computed = chain_update(prev, commit.seq, ops.as_ref());
                    if computed != commit.stored_chain {
                        return Err(StoreError::DigestMismatch {
                            seq: commit.seq,
                            stored: commit.stored_chain,
                            computed,
                        });
                    }
                }
                chains.insert(commit.child, commit.stored_chain);
                last_seq = commit.seq;
                items.push(commit.prepared);
                meta.push(commit.seq);
            }
            if let Some(error) = scan.error {
                return Err(error);
            }
            if let Some((message, clean_offset, total_len)) = scan.trailer {
                let path = wals[i].1.clone();
                if i != last_segment {
                    return Err(StoreError::Corrupt(format!(
                        "frame error inside non-final segment {}: {message}",
                        path.display()
                    )));
                }
                torn = Some((path, clean_offset, (total_len - clean_offset) as u64));
            }
        }
        if let Some((path, clean_offset, _)) = &torn {
            // Torn tail: truncate the file back to the clean prefix.
            let file = OpenOptions::new().write(true).open(path)?;
            file.set_len(*clean_offset as u64)?;
            file.sync_data()?;
        }

        // ---- Replay the verified prefix -------------------------------
        let apply_span = sm_obs::timer::start(sm_obs::Phase::RecoveryApply);
        let mut data = base.data;
        let replayed_ops = data.replay_prepared(items).map_err(|e| {
            let seq = meta[e.index];
            match e.error {
                // The count cross-check is journal corruption, like the
                // serial path's Corrupt; other failures are genuine
                // replay errors attributed to their commit.
                err @ ReplayError::Count { .. } => {
                    StoreError::Corrupt(format!("commit {seq} {err}"))
                }
                error => StoreError::Replay { seq, error },
            }
        })? as u64;
        if let Some(span) = apply_span {
            span.finish_root();
        }

        // Prime the store to continue journaling after the recovered
        // prefix (see recover_serial_inner for the marks rationale).
        data.seal_history();
        let mut marks = Vec::new();
        data.history_marks(&mut marks);
        inner.last_marks = marks;
        inner.chains = chains.clone();
        inner.next_seq = last_seq + 1;
        inner.started = true;
        inner.bounds.clear();
        inner.ops_since_snapshot = 0;
        inner.delta_base = None;
        inner.snapshots_since_full = 0;
        inner.open_segment(last_seq + 1)?;

        Ok(Some(Recovered {
            data,
            snapshot_seq: base.seq,
            last_seq,
            replayed_ops,
            torn_bytes: torn.map(|(_, _, t)| t).unwrap_or(0),
            chains,
        }))
    }
}
