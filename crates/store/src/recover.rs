//! Crash recovery: snapshot load, torn-tail repair, journal replay, and
//! digest-chain verification.
//!
//! The invariant recovery enforces is *verified prefix or nothing*:
//!
//! 1. The highest decodable snapshot is the base state.
//! 2. The WAL suffix (commits with `seq` above the snapshot) replays in
//!    strict sequence order through the ordinary OT apply path
//!    ([`Persist::apply_log`]) — the same code path a live merge uses,
//!    which is why the reconstructed state is bit-identical to the
//!    original run's.
//! 3. Every replayed record's FNV digest chain is recomputed and checked
//!    against the journaled value; any mismatch refuses recovery
//!    ([`StoreError::DigestMismatch`]) rather than starting from silently
//!    divergent state.
//! 4. A frame error in the **final** segment is a torn write: the tail is
//!    truncated and the clean prefix wins. The same error anywhere else
//!    means interior corruption and fails closed
//!    ([`StoreError::Corrupt`]).

use std::fs::{self, OpenOptions};
use std::time::Instant;

use bytes::Buf;
use sm_mergeable::Persist;
use sm_net::frame::Frames;
use sm_obs::{emit, EventKind, TaskPath};

use crate::store::{list_files, Store};
use crate::wal::{chain_update, Record, FNV_OFFSET};
use crate::StoreError;

/// The outcome of a successful [`Store::recover`].
#[derive(Debug)]
pub struct Recovered<D> {
    /// The reconstructed state: snapshot plus replayed journal suffix.
    pub data: D,
    /// Sequence of the snapshot recovery started from (0 = genesis).
    pub snapshot_seq: u64,
    /// Sequence of the last replayed commit (equals `snapshot_seq` when
    /// the journal suffix was empty).
    pub last_seq: u64,
    /// Operations replayed from the journal suffix.
    pub replayed_ops: u64,
    /// Bytes of torn tail frame truncated during repair (0 = clean).
    pub torn_bytes: u64,
}

impl Store {
    /// Recover the journaled state from disk, priming this store to
    /// continue journaling right after it.
    ///
    /// Returns `Ok(None)` when the directory holds no journal (a fresh
    /// store — call [`begin`](Store::begin), typically via
    /// [`run_with_store`](crate::run_with_store)). Fails closed on
    /// interior corruption or digest mismatch; see the module docs for
    /// the exact rules.
    pub fn recover<D: Persist>(&self) -> Result<Option<Recovered<D>>, StoreError> {
        let t0 = sm_obs::is_enabled().then(Instant::now);
        let result = self.recover_inner::<D>();
        match &result {
            Ok(recovered) => {
                if let (Some(t0), Some(r)) = (t0, recovered.as_ref()) {
                    let replay_nanos = t0.elapsed().as_nanos() as u64;
                    emit(&TaskPath::root(), || EventKind::RecoveryReplayed {
                        replayed_ops: r.replayed_ops as usize,
                        torn_bytes: r.torn_bytes as usize,
                        replay_nanos,
                    });
                    sm_obs::timer::observe(
                        &TaskPath::root(),
                        sm_obs::Phase::RecoveryReplay,
                        replay_nanos,
                    );
                }
            }
            // Failed-closed recovery is an anomaly: surface it in the
            // event stream so the flight recorder dumps its rings.
            Err(err) => {
                let reason = match err {
                    StoreError::Io(e) => format!("Io: {e}"),
                    StoreError::Corrupt(msg) => format!("Corrupt: {msg}"),
                    StoreError::DigestMismatch { seq, .. } => {
                        format!("DigestMismatch at seq {seq}")
                    }
                    StoreError::Replay { seq, .. } => format!("Replay failed at seq {seq}"),
                };
                emit(&TaskPath::root(), || EventKind::RecoveryFailed { reason });
            }
        }
        result
    }

    fn recover_inner<D: Persist>(&self) -> Result<Option<Recovered<D>>, StoreError> {
        let mut inner = self.inner.lock();
        let snaps = list_files(&inner.dir, "snap-")?;
        let wals = list_files(&inner.dir, "wal-")?;
        if snaps.is_empty() {
            if !wals.is_empty() {
                return Err(StoreError::Corrupt(
                    "WAL segments present but no snapshot: the genesis baseline is gone".into(),
                ));
            }
            return Ok(None);
        }

        // Highest decodable snapshot wins. Snapshots are written to a
        // temp file and renamed, so normally the newest is valid; if it
        // is not, an older one may still give a usable (if longer) replay.
        let mut base = None;
        for (seq, path) in snaps.iter().rev() {
            let bytes = fs::read(path)?;
            let mut frames = Frames::new(&bytes);
            let Some((_, payload)) = frames.next() else {
                continue;
            };
            if let Ok(Record::Snapshot(snap)) = Record::from_bytes(payload) {
                if snap.seq == *seq {
                    base = Some(snap);
                    break;
                }
            }
        }
        let Some(snap) = base else {
            return Err(StoreError::Corrupt(
                "no snapshot file decodes cleanly".into(),
            ));
        };

        let mut state = snap.state.clone();
        let mut data = D::decode_state(&mut state)
            .map_err(|e| StoreError::Corrupt(format!("snapshot state: {e}")))?;
        let mut chains: std::collections::BTreeMap<Vec<u64>, u64> =
            snap.chains.iter().cloned().collect();
        let mut last_seq = snap.seq;
        let mut replayed_ops = 0u64;
        let mut torn_bytes = 0u64;

        let last_segment = wals.len().saturating_sub(1);
        for (i, (_, path)) in wals.iter().enumerate() {
            let bytes = fs::read(path)?;
            let mut frames = Frames::new(&bytes);
            for (_, payload) in frames.by_ref() {
                let record = Record::from_bytes(payload)
                    .map_err(|e| StoreError::Corrupt(format!("WAL record: {e}")))?;
                let Record::Commit(commit) = record else {
                    return Err(StoreError::Corrupt(
                        "snapshot record inside a WAL segment".into(),
                    ));
                };
                if commit.seq <= snap.seq {
                    // A pre-snapshot segment that escaped GC (crash
                    // between snapshot and segment deletion): already
                    // folded into the snapshot, skip.
                    continue;
                }
                if commit.seq != last_seq + 1 {
                    return Err(StoreError::Corrupt(format!(
                        "commit sequence gap: expected {}, found {}",
                        last_seq + 1,
                        commit.seq
                    )));
                }
                let prev = chains.get(&commit.child).copied().unwrap_or(FNV_OFFSET);
                let computed = chain_update(prev, commit.seq, commit.ops.as_slice());
                if computed != commit.chain {
                    return Err(StoreError::DigestMismatch {
                        seq: commit.seq,
                        stored: commit.chain,
                        computed,
                    });
                }
                let mut ops = commit.ops.clone();
                let applied = data.apply_log(&mut ops).map_err(|e| StoreError::Replay {
                    seq: commit.seq,
                    error: e,
                })?;
                if applied as u64 != commit.ops_count || ops.has_remaining() {
                    return Err(StoreError::Corrupt(format!(
                        "commit {} replayed {applied} of {} ops with {} trailing bytes",
                        commit.seq,
                        commit.ops_count,
                        ops.remaining()
                    )));
                }
                chains.insert(commit.child.clone(), computed);
                last_seq = commit.seq;
                replayed_ops += applied as u64;
                // Reproduce the journaling protocol's seal points: the
                // original run sealed its history at every commit, so the
                // replayed structure must carry the same fuse barriers.
                // This also keeps replay linear — without the barrier,
                // tail fusion accretes one ever-growing span op that is
                // rebuilt on every replayed operation.
                data.seal_history();
            }
            if let Some(trailer) = frames.trailer() {
                if i != last_segment {
                    return Err(StoreError::Corrupt(format!(
                        "frame error inside non-final segment {}: {trailer}",
                        path.display()
                    )));
                }
                // Torn tail: truncate the file back to the clean prefix.
                torn_bytes = (bytes.len() - frames.offset()) as u64;
                let file = OpenOptions::new().write(true).open(path)?;
                file.set_len(frames.offset() as u64)?;
                file.sync_data()?;
            }
        }

        // Prime the store to continue journaling after the recovered
        // prefix. The recovered data's own history marks are its absolute
        // positions in the *new* numbering (snapshot state + replayed
        // ops), which is what future committed-slice exports are relative
        // to.
        data.seal_history();
        let mut marks = Vec::new();
        data.history_marks(&mut marks);
        inner.last_marks = marks;
        inner.chains = chains;
        inner.next_seq = last_seq + 1;
        inner.started = true;
        inner.bounds.clear();
        inner.ops_since_snapshot = 0;
        inner.open_segment(last_seq + 1)?;

        Ok(Some(Recovered {
            data,
            snapshot_seq: snap.seq,
            last_seq,
            replayed_ops,
            torn_bytes,
        }))
    }
}
