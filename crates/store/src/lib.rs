//! **sm-store** — durable op-log WAL, CoW snapshots, and deterministic
//! crash recovery for Spawn & Merge programs.
//!
//! A deterministic runtime makes durability unusually cheap to reason
//! about: the *only* state transitions of a program's data are the root
//! task's merge commits, and `merge_all` fixes their order independently
//! of scheduling. So a journal of those commits **is** the execution.
//! This crate hooks the runtime's [`CommitSink`](sm_core::CommitSink)
//! seam and writes, per commit, the span-compacted slice of committed
//! operations since the previous commit — the same wire shape the
//! distributed layer ships ([`sm_mergeable::Persist`]) — into a
//! segmented, CRC32-framed ([`sm_net::frame`]) write-ahead log.
//!
//! ```text
//! store directory
//! ├── snap-00000000000000000000   genesis snapshot (seq 0)
//! ├── snap-00000000000000000731   snapshot covering commits 1..=731
//! ├── wal-00000000000000000732    segment: commits 732…
//! └── wal-00000000000000000901    segment: commits 901… (current)
//! ```
//!
//! **Journaling protocol.** [`Store::begin`] persists a genesis snapshot
//! of the initial state. Each root merge then appends one commit record:
//! the store *seals* the data's history (so tail fusion can never rewrite
//! journaled bytes in place), exports the committed slice since its last
//! marks, extends a per-child FNV-1a digest chain over `(seq, ops bytes)`,
//! and frames the record into the current segment, fsyncing per
//! [`FsyncPolicy`]. Snapshots (explicit or every `snapshot_every_ops`)
//! serialize the full state — cheap for the Rope/ChunkTree backends,
//! whose `Arc`-shared leaves make cloning for serialization CoW — and
//! garbage-collect the covered segments.
//!
//! **Recovery** ([`Store::recover`]) loads the newest decodable snapshot,
//! repairs a torn tail frame in the final segment, replays the commit
//! suffix through the ordinary OT apply path, and re-verifies every
//! digest chain link — refusing to start on any mismatch. Determinism
//! closes the loop: replaying the same commit slices over the same base
//! state reproduces the original state bit for bit.
//!
//! ```no_run
//! use sm_mergeable::MList;
//! use sm_store::{run_with_store, Store, StoreOptions};
//!
//! let store = Store::open("/var/lib/app/journal", StoreOptions::default()).unwrap();
//! let data = match store.recover::<MList<u32>>().unwrap() {
//!     Some(recovered) => recovered.data,       // crashed last time: resume
//!     None => MList::new(),                    // first run: genesis
//! };
//! let (list, ()) = run_with_store(data, sm_core::Pool::new(), &store, |ctx| {
//!     ctx.spawn(|c| {
//!         c.data_mut().push(1);
//!         Ok(())
//!     });
//!     ctx.merge_all();
//! })
//! .unwrap();
//! # let _ = list;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod recover;
mod store;
pub mod wal;

use std::fmt;

pub use recover::Recovered;
pub use sm_mergeable::{Persist, ReplayError};
pub use store::{
    run_with_store, FrameBound, FsyncPolicy, RetentionPolicy, Store, StoreOptions, StoreSink,
};

/// Why a store operation or recovery failed.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// The on-disk journal violates a structural invariant (interior
    /// frame corruption, sequence gap, missing baseline, …). Recovery
    /// fails closed rather than guessing.
    Corrupt(String),
    /// Replay reproduced different bytes than were journaled: the
    /// recomputed digest chain diverges from the stored one at `seq`.
    DigestMismatch {
        /// The first commit whose chain link does not verify.
        seq: u64,
        /// Chain value stored in the record.
        stored: u64,
        /// Chain value recomputed during replay.
        computed: u64,
    },
    /// A journaled commit failed to decode or apply during replay.
    Replay {
        /// The offending commit.
        seq: u64,
        /// What went wrong.
        error: ReplayError,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Corrupt(msg) => write!(f, "store corrupt: {msg}"),
            StoreError::DigestMismatch {
                seq,
                stored,
                computed,
            } => write!(
                f,
                "digest chain mismatch at commit {seq}: stored {stored:#018x}, \
                 recomputed {computed:#018x} — refusing to recover"
            ),
            StoreError::Replay { seq, error } => {
                write!(f, "replay of commit {seq} failed: {error}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Replay { error, .. } => Some(error),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}
