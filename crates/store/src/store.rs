//! The [`Store`]: segmented WAL writer, snapshot trigger, and the
//! [`CommitSink`] bridge that journals a running program.

use std::any::Any;
use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::marker::PhantomData;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

use bytes::BytesMut;
use parking_lot::{Condvar, Mutex};
use sm_core::{run_with_sink, CommitSink, Pool, TaskCtx};
use sm_mergeable::Persist;
use sm_net::frame::encode_frame;
use sm_obs::{emit, EventKind, TaskPath};

use crate::wal::{
    chain_update, segment_name, snapshot_delta_name, snapshot_name, CommitRecord, Record,
    SnapshotDeltaRecord, SnapshotRecord, FNV_OFFSET,
};
use crate::StoreError;

/// When appended WAL frames are flushed to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every appended record: no committed merge is ever
    /// lost, at one disk round-trip per commit.
    Always,
    /// Group commit: `fsync` once every `n` appends. A crash can lose up
    /// to the last `n − 1` commits; recovery still restores a consistent
    /// digest-verified prefix.
    EveryN(u32),
    /// `fsync` when at least this much time has passed since the last
    /// one, amortizing the flush over bursts.
    Interval(Duration),
}

/// What the store does with journal files a durable full snapshot has
/// made redundant for recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RetentionPolicy {
    /// Log-structured retention: once a full snapshot at `S` is durable,
    /// delete older snapshots, delta snapshots at or below `S`, and
    /// every *closed* WAL segment whose commits are all ≤ `S`. Recovery
    /// work stays proportional to the data written since the last
    /// snapshot, not to the journal's lifetime.
    #[default]
    PruneCovered,
    /// Never delete journal files; every snapshot and WAL segment since
    /// genesis remains (archival / audit mode).
    KeepAll,
}

/// Tunables for [`Store::open`].
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// Flush policy for WAL appends.
    pub fsync: FsyncPolicy,
    /// Rotate to a new WAL segment once the current one exceeds this
    /// many bytes.
    pub segment_bytes: u64,
    /// Take an automatic snapshot (and GC covered segments) after this
    /// many journaled operations; `0` disables automatic snapshots.
    pub snapshot_every_ops: u64,
    /// Run automatic snapshots on an attached worker pool instead of
    /// the commit path: the trigger captures a CoW fork of the data
    /// under the store lock and returns; serialization, fsync, and
    /// rename happen off-lock. Needs [`Store::attach_pool`] (done
    /// automatically by [`run_with_store`]); without a pool the
    /// snapshot falls back to running inline.
    pub snapshot_in_background: bool,
    /// Write automatic snapshots as deltas against the last full
    /// snapshot ([`Persist::encode_state_delta`]): only chunks not
    /// shared with the base are persisted. Every
    /// [`full_snapshot_every`](StoreOptions::full_snapshot_every)-th
    /// automatic snapshot (and every explicit [`Store::snapshot`]) is
    /// still full. Deltas never authorize WAL pruning — a torn delta
    /// degrades recovery to the full base plus a longer replay, never
    /// to failure.
    pub delta_snapshots: bool,
    /// In delta mode, one automatic snapshot out of this many is a full
    /// snapshot (the fresh delta base and pruning point). Values ≤ 1
    /// make every snapshot full.
    pub full_snapshot_every: u32,
    /// What happens to covered journal files after a full snapshot.
    pub retention: RetentionPolicy,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            fsync: FsyncPolicy::Always,
            segment_bytes: 8 << 20,
            snapshot_every_ops: 0,
            snapshot_in_background: false,
            delta_snapshots: false,
            full_snapshot_every: 8,
            retention: RetentionPolicy::PruneCovered,
        }
    }
}

/// Byte position of one journaled commit's frame end inside its segment
/// — introspection for crash-injection tests, which need to cut the WAL
/// exactly on (or inside) record boundaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameBound {
    /// The segment file holding the frame.
    pub segment: PathBuf,
    /// The commit's sequence number.
    pub seq: u64,
    /// Byte offset just past the frame inside `segment`.
    pub end: u64,
}

pub(crate) struct Segment {
    pub file: File,
    pub path: PathBuf,
    pub bytes: u64,
}

pub(crate) struct Inner {
    pub dir: PathBuf,
    pub options: StoreOptions,
    pub segment: Option<Segment>,
    /// Sequence the next commit record will get (commits start at 1).
    pub next_seq: u64,
    /// Whether the genesis (or recovery) snapshot baseline exists.
    pub started: bool,
    /// Absolute history marks of the journaled data at the last commit.
    pub last_marks: Vec<usize>,
    /// FNV digest chain per committing child path.
    pub chains: BTreeMap<Vec<u64>, u64>,
    pub ops_since_snapshot: u64,
    pub appends_since_fsync: u32,
    pub last_fsync: Instant,
    pub bounds: Vec<FrameBound>,
    /// First failure observed by the infallible sink callbacks.
    pub error: Option<StoreError>,
    /// Worker pool for background snapshots ([`Store::attach_pool`]).
    pub pool: Option<Pool>,
    /// Back-reference for background workers to re-lock the store.
    pub handle: Weak<Mutex<Inner>>,
    /// Signaled whenever a background snapshot completes.
    pub snap_cv: Arc<Condvar>,
    /// A background snapshot job is queued or running.
    pub snapshot_in_flight: bool,
    /// CoW fork of the data at the last durable full snapshot, plus the
    /// sequence it covers: the base the next delta snapshot is encoded
    /// against. `None` (e.g. right after recovery) forces the next
    /// automatic snapshot to be full.
    pub delta_base: Option<(u64, Box<dyn Any + Send>)>,
    /// Automatic snapshots taken since the last full one.
    pub snapshots_since_full: u32,
}

/// A durable journal of one program's root-task commits.
///
/// Cheap to clone (`Arc`-shared); all file I/O happens under one mutex,
/// on the root task's thread. See the crate docs for the protocol.
#[derive(Clone)]
pub struct Store {
    pub(crate) inner: Arc<Mutex<Inner>>,
}

impl Store {
    /// Open (creating if needed) the store directory. No file is read or
    /// written until [`begin`](Store::begin) or
    /// [`recover`](Store::recover).
    pub fn open(dir: impl Into<PathBuf>, options: StoreOptions) -> Result<Store, StoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let inner = Arc::new(Mutex::new(Inner {
            dir,
            options,
            segment: None,
            next_seq: 1,
            started: false,
            last_marks: Vec::new(),
            chains: BTreeMap::new(),
            ops_since_snapshot: 0,
            appends_since_fsync: 0,
            last_fsync: Instant::now(),
            bounds: Vec::new(),
            error: None,
            pool: None,
            handle: Weak::new(),
            snap_cv: Arc::new(Condvar::new()),
            snapshot_in_flight: false,
            delta_base: None,
            snapshots_since_full: 0,
        }));
        inner.lock().handle = Arc::downgrade(&inner);
        Ok(Store { inner })
    }

    /// Attach a worker pool for
    /// [background snapshots](StoreOptions::snapshot_in_background).
    /// [`run_with_store`] calls this with the program's pool; embedders
    /// with their own commit loop call it directly.
    pub fn attach_pool(&self, pool: &Pool) {
        self.inner.lock().pool = Some(pool.clone());
    }

    /// Block until no background snapshot is queued or running. Any
    /// failure the worker parked is left for [`Store::take_error`].
    pub fn wait_snapshots(&self) {
        let mut inner = self.inner.lock();
        let cv = inner.snap_cv.clone();
        while inner.snapshot_in_flight {
            cv.wait(&mut inner);
        }
    }

    /// The store's directory.
    pub fn dir(&self) -> PathBuf {
        self.inner.lock().dir.clone()
    }

    /// Journal the genesis baseline: a snapshot of `data` covering seq 0,
    /// and a fresh WAL segment for the commits to come. Idempotent once
    /// the store is started (including after [`recover`](Store::recover)).
    ///
    /// Refuses to run on a directory that already holds journal files but
    /// was not recovered — silently restarting over an existing journal
    /// would orphan it.
    pub fn begin<D: Persist>(&self, data: &D) -> Result<(), StoreError> {
        let mut inner = self.inner.lock();
        if inner.started {
            return Ok(());
        }
        if !list_files(&inner.dir, "snap-")?.is_empty()
            || !list_files(&inner.dir, "wal-")?.is_empty()
        {
            return Err(StoreError::Corrupt(
                "store directory already contains a journal; recover it instead of beginning anew"
                    .into(),
            ));
        }
        data.seal_history();
        let mut marks = Vec::new();
        data.history_marks(&mut marks);
        inner.write_snapshot(data, 0, &marks)?;
        if inner.options.delta_snapshots {
            inner.delta_base = Some((0, Box::new(data.fork())));
        }
        inner.last_marks = marks;
        inner.open_segment(1)?;
        inner.started = true;
        Ok(())
    }

    /// Append one commit record for the slice of `data`'s committed logs
    /// since the previous commit, attributing it to `child`.
    pub fn commit<D: Persist>(&self, data: &D, child: &TaskPath) -> Result<(), StoreError> {
        self.inner.lock().commit(data, child)
    }

    /// [`commit`](Store::commit) followed by an unconditional fsync —
    /// forces the record onto stable storage and onto a frame boundary
    /// regardless of the configured policy.
    pub fn commit_now<D: Persist>(&self, data: &D, child: &TaskPath) -> Result<(), StoreError> {
        let mut inner = self.inner.lock();
        inner.commit(data, child)?;
        inner.fsync_segment()
    }

    /// Persist a full-state snapshot of `data`, rotate the WAL, and —
    /// under [`RetentionPolicy::PruneCovered`] — delete the segments and
    /// older snapshots the new snapshot covers. Always full, even in
    /// delta mode; waits out any background snapshot first so on-disk
    /// ordering matches trigger ordering.
    pub fn snapshot<D: Persist>(&self, data: &D) -> Result<(), StoreError> {
        let mut inner = self.inner.lock();
        let cv = inner.snap_cv.clone();
        while inner.snapshot_in_flight {
            cv.wait(&mut inner);
        }
        inner.snapshot_full(data)
    }

    /// Flush the current segment to stable storage.
    pub fn sync(&self) -> Result<(), StoreError> {
        self.inner.lock().fsync_segment()
    }

    /// Journal the operations recorded since the last commit, if any,
    /// attributed to `child`, then fsync. Returns whether a record was
    /// appended. This is the explicit form of what [`StoreSink`] does
    /// when a program finishes — embedders with their own commit loop
    /// (e.g. a distributed coordinator shutting down) call it directly.
    pub fn commit_outstanding<D: Persist>(
        &self,
        data: &D,
        child: &TaskPath,
    ) -> Result<bool, StoreError> {
        let mut inner = self.inner.lock();
        let mut marks = Vec::new();
        data.history_marks(&mut marks);
        let appended = marks != inner.last_marks;
        if appended {
            inner.commit(data, child)?;
        }
        inner.fsync_segment()?;
        Ok(appended)
    }

    /// The first error a sink callback swallowed, if any. The sink
    /// interface is infallible, so failures stick here;
    /// [`run_with_store`] checks this after the program finishes.
    pub fn take_error(&self) -> Option<StoreError> {
        self.inner.lock().error.take()
    }

    /// Frame boundaries of every commit appended through this handle, in
    /// append order (crash-injection test introspection).
    pub fn frame_bounds(&self) -> Vec<FrameBound> {
        self.inner.lock().bounds.clone()
    }

    /// Sequence number of the last appended commit (0 = none yet).
    pub fn last_seq(&self) -> u64 {
        self.inner.lock().next_seq - 1
    }
}

impl Inner {
    fn commit<D: Persist>(&mut self, data: &D, child: &TaskPath) -> Result<(), StoreError> {
        if !self.started {
            return Err(StoreError::Corrupt(
                "commit before begin/recover: no genesis baseline exists".into(),
            ));
        }
        // Seal first: from here on, the bytes we export can no longer be
        // rewritten in place by tail fusion of later operations.
        data.seal_history();
        let mut ops_buf = BytesMut::new();
        let mut cursor = 0;
        let ops_count = data.encode_committed_since(&self.last_marks, &mut cursor, &mut ops_buf);
        let mut marks = Vec::new();
        data.history_marks(&mut marks);
        let ops = ops_buf.freeze();

        let seq = self.next_seq;
        let path = child.ids().to_vec();
        let prev = self.chains.get(&path).copied().unwrap_or(FNV_OFFSET);
        let chain = chain_update(prev, seq, ops.as_slice());
        let record = Record::Commit(CommitRecord {
            seq,
            child: path.clone(),
            marks: marks.clone(),
            ops,
            ops_count: ops_count as u64,
            chain,
        });
        self.append(&record, seq)?;
        self.chains.insert(path, chain);
        self.last_marks = marks;
        self.next_seq = seq + 1;
        self.ops_since_snapshot += ops_count as u64;
        if self.options.snapshot_every_ops > 0
            && self.ops_since_snapshot >= self.options.snapshot_every_ops
        {
            if self.options.snapshot_in_background {
                self.snapshot_background(data)?;
            } else {
                self.snapshot_auto(data)?;
            }
        }
        Ok(())
    }

    /// Frame `record` and append it to the current segment, rotating
    /// first when the segment is full, fsyncing per policy.
    fn append(&mut self, record: &Record, seq: u64) -> Result<(), StoreError> {
        let append_t0 = sm_obs::is_enabled().then(Instant::now);
        let payload = record.to_bytes();
        let mut framed = Vec::with_capacity(payload.len() + sm_net::frame::HEADER_LEN);
        encode_frame(payload.as_slice(), &mut framed);

        if self.segment.as_ref().is_some_and(|s| {
            s.bytes > 0 && s.bytes + framed.len() as u64 > self.options.segment_bytes
        }) {
            self.fsync_segment()?;
            self.open_segment(seq)?;
        }
        let segment = self
            .segment
            .as_mut()
            .expect("started store always has an open segment");
        segment.file.write_all(&framed)?;
        segment.bytes += framed.len() as u64;
        self.bounds.push(FrameBound {
            segment: segment.path.clone(),
            seq,
            end: segment.bytes,
        });

        let fsync_due = match self.options.fsync {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => self.appends_since_fsync + 1 >= n.max(1),
            FsyncPolicy::Interval(d) => self.last_fsync.elapsed() >= d,
        };
        let mut fsync_nanos = 0u64;
        if fsync_due {
            let t0 = sm_obs::is_enabled().then(Instant::now);
            self.fsync_segment()?;
            if let Some(t0) = t0 {
                fsync_nanos = t0.elapsed().as_nanos() as u64;
            }
        } else {
            self.appends_since_fsync += 1;
        }
        emit(&TaskPath::root(), || EventKind::WalAppended {
            bytes: framed.len(),
            fsynced: fsync_due,
            fsync_nanos,
        });
        if let Some(t0) = append_t0 {
            let total = t0.elapsed().as_nanos() as u64;
            // The fsync is reported as its own phase; the append phase
            // covers framing + write without it.
            sm_obs::timer::observe(
                &TaskPath::root(),
                sm_obs::Phase::WalAppend,
                total.saturating_sub(fsync_nanos),
            );
            sm_obs::timer::observe(&TaskPath::root(), sm_obs::Phase::WalFsync, fsync_nanos);
        }
        Ok(())
    }

    fn fsync_segment(&mut self) -> Result<(), StoreError> {
        if let Some(segment) = &mut self.segment {
            segment.file.sync_data()?;
        }
        self.appends_since_fsync = 0;
        self.last_fsync = Instant::now();
        Ok(())
    }

    pub(crate) fn open_segment(&mut self, first_seq: u64) -> Result<(), StoreError> {
        let path = self.dir.join(segment_name(first_seq));
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let bytes = file.metadata()?.len();
        self.segment = Some(Segment { file, path, bytes });
        Ok(())
    }

    /// Whether the next automatic snapshot may be a delta, and against
    /// which base. `None` means full (delta mode off, no usable base,
    /// or the full-snapshot interval is due).
    fn delta_base_for<D: Persist>(&self) -> Option<(u64, &D)> {
        if !self.options.delta_snapshots
            || self.snapshots_since_full + 1 >= self.options.full_snapshot_every.max(1)
        {
            return None;
        }
        let (base_seq, base) = self.delta_base.as_ref()?;
        Some((*base_seq, base.downcast_ref::<D>()?))
    }

    /// Automatic snapshot on the commit path: a delta when a base is
    /// available and the full interval is not due, a full snapshot
    /// otherwise.
    fn snapshot_auto<D: Persist>(&mut self, data: &D) -> Result<(), StoreError> {
        let Some((base_seq, base)) = self.delta_base_for::<D>() else {
            return self.snapshot_full(data);
        };
        data.seal_history();
        let mut marks = Vec::new();
        data.history_marks(&mut marks);
        let covered = self.next_seq - 1;
        let chains = self.chains_vec();
        persist_snapshot_delta(&self.dir, data, base, base_seq, covered, &marks, &chains)?;
        // No rotation, no pruning: recovery must still be able to fall
        // back to the full base plus the covered WAL.
        self.snapshots_since_full += 1;
        self.ops_since_snapshot = 0;
        Ok(())
    }

    /// Full snapshot: write `snap-<covered>`, rotate the WAL, apply
    /// retention, and refresh the delta base.
    fn snapshot_full<D: Persist>(&mut self, data: &D) -> Result<(), StoreError> {
        data.seal_history();
        let mut marks = Vec::new();
        data.history_marks(&mut marks);
        let covered = self.next_seq - 1;
        self.write_snapshot(data, covered, &marks)?;
        // Rotate to a fresh segment, then drop everything the snapshot
        // covers: older snapshots and every closed WAL segment (all of
        // their commits have seq ≤ covered by construction).
        self.fsync_segment()?;
        self.open_segment(self.next_seq)?;
        self.prune_covered(covered)?;
        if self.options.delta_snapshots {
            self.delta_base = Some((covered, Box::new(data.fork())));
        }
        self.snapshots_since_full = 0;
        self.ops_since_snapshot = 0;
        Ok(())
    }

    /// Queue the automatic snapshot on the attached pool: capture a CoW
    /// fork, marks, and chains under the lock (held by the caller),
    /// then serialize and fsync off-lock. Falls back to an inline
    /// snapshot when no pool is attached; skips when one is already in
    /// flight (`ops_since_snapshot` keeps accumulating, so the next
    /// commit after completion re-triggers).
    fn snapshot_background<D: Persist>(&mut self, data: &D) -> Result<(), StoreError> {
        if self.snapshot_in_flight {
            return Ok(());
        }
        let (Some(pool), Some(store)) = (self.pool.clone(), self.handle.upgrade()) else {
            return self.snapshot_auto(data);
        };
        data.seal_history();
        let mut marks = Vec::new();
        data.history_marks(&mut marks);
        let covered = self.next_seq - 1;
        let chains = self.chains_vec();
        let base: Option<(u64, D)> = self
            .delta_base_for::<D>()
            .map(|(seq, base)| (seq, base.fork()));
        let fork = data.fork();
        if base.is_none() {
            // Rotate now, under the lock: the snapshot covers exactly
            // the commits ≤ `covered`, and commits racing the worker
            // land in the fresh segment that survives pruning.
            self.fsync_segment()?;
            self.open_segment(self.next_seq)?;
            self.snapshots_since_full = 0;
        } else {
            self.snapshots_since_full += 1;
        }
        self.snapshot_in_flight = true;
        self.ops_since_snapshot = 0;
        let cv = self.snap_cv.clone();
        let dir = self.dir.clone();
        pool.execute(move || {
            let full = base.is_none();
            let result = match &base {
                Some((base_seq, base)) => {
                    persist_snapshot_delta(&dir, &fork, base, *base_seq, covered, &marks, &chains)
                }
                None => persist_snapshot(&dir, &fork, covered, &marks, &chains),
            };
            let mut inner = store.lock();
            match result {
                Ok(()) if full => {
                    if let Err(e) = inner.prune_covered(covered) {
                        if inner.error.is_none() {
                            inner.error = Some(e);
                        }
                    }
                    if inner.options.delta_snapshots {
                        inner.delta_base = Some((covered, Box::new(fork)));
                    }
                }
                Ok(()) => {}
                Err(e) => {
                    if inner.error.is_none() {
                        inner.error = Some(e);
                    }
                }
            }
            inner.snapshot_in_flight = false;
            cv.notify_all();
        });
        Ok(())
    }

    /// Apply [`RetentionPolicy`] after a durable full snapshot at
    /// `covered`: remove older full snapshots, deltas at or below
    /// `covered`, and closed WAL segments whose commits are all ≤
    /// `covered` (a segment is fully covered when its successor starts
    /// at or below `covered + 1`; the open segment never qualifies).
    fn prune_covered(&mut self, covered: u64) -> Result<(), StoreError> {
        if self.options.retention == RetentionPolicy::KeepAll {
            return Ok(());
        }
        let current = self.segment.as_ref().map(|s| s.path.clone());
        let mut snapshots = 0usize;
        for (seq, path) in list_files(&self.dir, "snap-delta-")? {
            if seq <= covered {
                fs::remove_file(path)?;
                snapshots += 1;
            }
        }
        for (seq, path) in list_files(&self.dir, "snap-")? {
            if seq < covered {
                fs::remove_file(path)?;
                snapshots += 1;
            }
        }
        let wals = list_files(&self.dir, "wal-")?;
        let mut removed = Vec::new();
        for (i, (_, path)) in wals.iter().enumerate() {
            let next_first = wals.get(i + 1).map(|(seq, _)| *seq);
            if Some(path) != current.as_ref() && next_first.is_some_and(|n| n <= covered + 1) {
                fs::remove_file(path)?;
                removed.push(path.clone());
            }
        }
        self.bounds.retain(|b| !removed.contains(&b.segment));
        if snapshots + removed.len() > 0 {
            emit(&TaskPath::root(), || EventKind::WalSegmentsPruned {
                segments: removed.len(),
                snapshots,
            });
        }
        Ok(())
    }

    fn chains_vec(&self) -> Vec<(Vec<u64>, u64)> {
        self.chains
            .iter()
            .map(|(path, chain)| (path.clone(), *chain))
            .collect()
    }

    /// Durably write `snap-<seq>`: temp file, fsync, atomic rename,
    /// directory fsync.
    fn write_snapshot<D: Persist>(
        &mut self,
        data: &D,
        seq: u64,
        marks: &[usize],
    ) -> Result<(), StoreError> {
        persist_snapshot(&self.dir, data, seq, marks, &self.chains_vec())
    }
}

/// Durably write a full snapshot `snap-<seq>`: encode, frame, temp
/// file, fsync, atomic rename, directory fsync. Free function so
/// background workers can run it without the store lock.
fn persist_snapshot<D: Persist>(
    dir: &Path,
    data: &D,
    seq: u64,
    marks: &[usize],
    chains: &[(Vec<u64>, u64)],
) -> Result<(), StoreError> {
    let t0 = sm_obs::is_enabled().then(Instant::now);
    let mut state = BytesMut::new();
    data.encode_state(&mut state);
    let record = Record::Snapshot(SnapshotRecord {
        seq,
        marks: marks.to_vec(),
        chains: chains.to_vec(),
        state: state.freeze(),
    });
    let bytes = write_record_file(dir, &snapshot_name(seq), &record)?;
    if let Some(t0) = t0 {
        let snapshot_nanos = t0.elapsed().as_nanos() as u64;
        emit(&TaskPath::root(), || EventKind::SnapshotTaken {
            bytes,
            snapshot_nanos,
        });
        sm_obs::timer::observe(
            &TaskPath::root(),
            sm_obs::Phase::SnapshotWrite,
            snapshot_nanos,
        );
    }
    Ok(())
}

/// Durably write `snap-delta-<seq>` against the full snapshot at
/// `base_seq`, with the same temp-file discipline as a full snapshot.
fn persist_snapshot_delta<D: Persist>(
    dir: &Path,
    data: &D,
    base: &D,
    base_seq: u64,
    seq: u64,
    marks: &[usize],
    chains: &[(Vec<u64>, u64)],
) -> Result<(), StoreError> {
    let t0 = sm_obs::is_enabled().then(Instant::now);
    let mut delta = BytesMut::new();
    data.encode_state_delta(base, &mut delta);
    let record = Record::SnapshotDelta(SnapshotDeltaRecord {
        seq,
        base_seq,
        marks: marks.to_vec(),
        chains: chains.to_vec(),
        delta: delta.freeze(),
    });
    let bytes = write_record_file(dir, &snapshot_delta_name(seq), &record)?;
    if let Some(t0) = t0 {
        let snapshot_nanos = t0.elapsed().as_nanos() as u64;
        emit(&TaskPath::root(), || EventKind::SnapshotDeltaTaken {
            bytes,
            base_seq,
            snapshot_nanos,
        });
        sm_obs::timer::observe(
            &TaskPath::root(),
            sm_obs::Phase::SnapshotDelta,
            snapshot_nanos,
        );
    }
    Ok(())
}

/// Frame `record` and write it durably to `dir/name`: temp file, fsync,
/// atomic rename, directory fsync. Returns the framed byte count.
fn write_record_file(dir: &Path, name: &str, record: &Record) -> Result<usize, StoreError> {
    let payload = record.to_bytes();
    let mut framed = Vec::with_capacity(payload.len() + sm_net::frame::HEADER_LEN);
    encode_frame(payload.as_slice(), &mut framed);
    let final_path = dir.join(name);
    let tmp_path = dir.join(format!("{name}.tmp"));
    let mut file = File::create(&tmp_path)?;
    file.write_all(&framed)?;
    file.sync_data()?;
    drop(file);
    fs::rename(&tmp_path, &final_path)?;
    File::open(dir)?.sync_all()?;
    Ok(framed.len())
}

/// List `<prefix><seq>` files in `dir` as `(seq, path)`, ascending by
/// sequence. Ignores temp files and foreign names.
pub(crate) fn list_files(dir: &Path, prefix: &str) -> Result<Vec<(u64, PathBuf)>, StoreError> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(seq) = crate::wal::parse_seq(name, prefix) {
            out.push((seq, entry.path()));
        }
    }
    out.sort();
    Ok(out)
}

/// The [`CommitSink`] that journals a program into a [`Store`].
///
/// Sink callbacks cannot return errors, so the first failure is parked
/// in the store ([`Store::take_error`]) and journaling stops — the
/// program itself keeps running; durability degrades, correctness does
/// not.
pub struct StoreSink<D> {
    store: Store,
    _marker: PhantomData<fn(&D)>,
}

impl<D> StoreSink<D> {
    /// A sink journaling into `store`.
    pub fn new(store: Store) -> Self {
        StoreSink {
            store,
            _marker: PhantomData,
        }
    }
}

impl<D: Persist> CommitSink<D> for StoreSink<D> {
    fn committed(&mut self, data: &D, child: &TaskPath, _child_continues: bool) {
        let mut inner = self.store.inner.lock();
        if inner.error.is_some() {
            return;
        }
        if let Err(e) = inner.commit(data, child) {
            inner.error = Some(e);
        }
    }

    fn truncating(&mut self, data: &D, _watermark: &[usize]) {
        let mut inner = self.store.inner.lock();
        if inner.error.is_some() {
            return;
        }
        // GC may drop root-local operations recorded after the last merge
        // commit (when every live fork is younger than them). Journal the
        // outstanding slice first so replay never misses them.
        let result = (|| {
            let mut marks = Vec::new();
            data.history_marks(&mut marks);
            if marks != inner.last_marks {
                inner.commit(data, &TaskPath::root())?;
            }
            Ok(())
        })();
        if let Err(e) = result {
            inner.error = Some(e);
        }
    }

    fn finished(&mut self, data: &D) {
        let mut inner = self.store.inner.lock();
        // Wait out any background snapshot so its outcome (including a
        // parked error) is visible before the program's result is
        // returned.
        let cv = inner.snap_cv.clone();
        while inner.snapshot_in_flight {
            cv.wait(&mut inner);
        }
        if inner.error.is_some() {
            return;
        }
        // Journal any trailing root-local operations recorded after the
        // last merge commit, then make everything durable.
        let result = (|| {
            let mut marks = Vec::new();
            data.history_marks(&mut marks);
            if marks != inner.last_marks {
                inner.commit(data, &TaskPath::root())?;
            }
            inner.fsync_segment()
        })();
        if let Err(e) = result {
            inner.error = Some(e);
        }
        // The final commit may itself have queued a snapshot.
        while inner.snapshot_in_flight {
            cv.wait(&mut inner);
        }
    }
}

/// [`run_with_sink`](sm_core::run_with_sink) journaling into `store`:
/// writes the genesis baseline (unless the store was just recovered),
/// journals every root commit, and surfaces any store failure after the
/// program finishes.
///
/// On `Err`, the program's result is lost — callers that need the
/// in-memory result despite a broken journal should install a
/// [`StoreSink`] through `run_with_sink` directly and inspect
/// [`Store::take_error`] themselves.
pub fn run_with_store<D, R>(
    data: D,
    pool: Pool,
    store: &Store,
    root: impl FnOnce(&mut TaskCtx<D>) -> R,
) -> Result<(D, R), StoreError>
where
    D: Persist,
{
    store.attach_pool(&pool);
    store.begin(&data)?;
    let (data, result) = run_with_sink(data, pool, Box::new(StoreSink::new(store.clone())), root);
    match store.take_error() {
        Some(e) => Err(e),
        None => Ok((data, result)),
    }
}
