//! The [`Store`]: segmented WAL writer, snapshot trigger, and the
//! [`CommitSink`] bridge that journals a running program.

use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::marker::PhantomData;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::BytesMut;
use parking_lot::Mutex;
use sm_core::{run_with_sink, CommitSink, Pool, TaskCtx};
use sm_mergeable::Persist;
use sm_net::frame::encode_frame;
use sm_obs::{emit, EventKind, TaskPath};

use crate::wal::{
    chain_update, segment_name, snapshot_name, CommitRecord, Record, SnapshotRecord, FNV_OFFSET,
};
use crate::StoreError;

/// When appended WAL frames are flushed to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every appended record: no committed merge is ever
    /// lost, at one disk round-trip per commit.
    Always,
    /// Group commit: `fsync` once every `n` appends. A crash can lose up
    /// to the last `n − 1` commits; recovery still restores a consistent
    /// digest-verified prefix.
    EveryN(u32),
    /// `fsync` when at least this much time has passed since the last
    /// one, amortizing the flush over bursts.
    Interval(Duration),
}

/// Tunables for [`Store::open`].
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// Flush policy for WAL appends.
    pub fsync: FsyncPolicy,
    /// Rotate to a new WAL segment once the current one exceeds this
    /// many bytes.
    pub segment_bytes: u64,
    /// Take an automatic snapshot (and GC covered segments) after this
    /// many journaled operations; `0` disables automatic snapshots.
    pub snapshot_every_ops: u64,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            fsync: FsyncPolicy::Always,
            segment_bytes: 8 << 20,
            snapshot_every_ops: 0,
        }
    }
}

/// Byte position of one journaled commit's frame end inside its segment
/// — introspection for crash-injection tests, which need to cut the WAL
/// exactly on (or inside) record boundaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameBound {
    /// The segment file holding the frame.
    pub segment: PathBuf,
    /// The commit's sequence number.
    pub seq: u64,
    /// Byte offset just past the frame inside `segment`.
    pub end: u64,
}

pub(crate) struct Segment {
    pub file: File,
    pub path: PathBuf,
    pub bytes: u64,
}

pub(crate) struct Inner {
    pub dir: PathBuf,
    pub options: StoreOptions,
    pub segment: Option<Segment>,
    /// Sequence the next commit record will get (commits start at 1).
    pub next_seq: u64,
    /// Whether the genesis (or recovery) snapshot baseline exists.
    pub started: bool,
    /// Absolute history marks of the journaled data at the last commit.
    pub last_marks: Vec<usize>,
    /// FNV digest chain per committing child path.
    pub chains: BTreeMap<Vec<u64>, u64>,
    pub ops_since_snapshot: u64,
    pub appends_since_fsync: u32,
    pub last_fsync: Instant,
    pub bounds: Vec<FrameBound>,
    /// First failure observed by the infallible sink callbacks.
    pub error: Option<StoreError>,
}

/// A durable journal of one program's root-task commits.
///
/// Cheap to clone (`Arc`-shared); all file I/O happens under one mutex,
/// on the root task's thread. See the crate docs for the protocol.
#[derive(Clone)]
pub struct Store {
    pub(crate) inner: Arc<Mutex<Inner>>,
}

impl Store {
    /// Open (creating if needed) the store directory. No file is read or
    /// written until [`begin`](Store::begin) or
    /// [`recover`](Store::recover).
    pub fn open(dir: impl Into<PathBuf>, options: StoreOptions) -> Result<Store, StoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Store {
            inner: Arc::new(Mutex::new(Inner {
                dir,
                options,
                segment: None,
                next_seq: 1,
                started: false,
                last_marks: Vec::new(),
                chains: BTreeMap::new(),
                ops_since_snapshot: 0,
                appends_since_fsync: 0,
                last_fsync: Instant::now(),
                bounds: Vec::new(),
                error: None,
            })),
        })
    }

    /// The store's directory.
    pub fn dir(&self) -> PathBuf {
        self.inner.lock().dir.clone()
    }

    /// Journal the genesis baseline: a snapshot of `data` covering seq 0,
    /// and a fresh WAL segment for the commits to come. Idempotent once
    /// the store is started (including after [`recover`](Store::recover)).
    ///
    /// Refuses to run on a directory that already holds journal files but
    /// was not recovered — silently restarting over an existing journal
    /// would orphan it.
    pub fn begin<D: Persist>(&self, data: &D) -> Result<(), StoreError> {
        let mut inner = self.inner.lock();
        if inner.started {
            return Ok(());
        }
        if !list_files(&inner.dir, "snap-")?.is_empty()
            || !list_files(&inner.dir, "wal-")?.is_empty()
        {
            return Err(StoreError::Corrupt(
                "store directory already contains a journal; recover it instead of beginning anew"
                    .into(),
            ));
        }
        data.seal_history();
        let mut marks = Vec::new();
        data.history_marks(&mut marks);
        inner.write_snapshot(data, 0, &marks)?;
        inner.last_marks = marks;
        inner.open_segment(1)?;
        inner.started = true;
        Ok(())
    }

    /// Append one commit record for the slice of `data`'s committed logs
    /// since the previous commit, attributing it to `child`.
    pub fn commit<D: Persist>(&self, data: &D, child: &TaskPath) -> Result<(), StoreError> {
        self.inner.lock().commit(data, child)
    }

    /// [`commit`](Store::commit) followed by an unconditional fsync —
    /// forces the record onto stable storage and onto a frame boundary
    /// regardless of the configured policy.
    pub fn commit_now<D: Persist>(&self, data: &D, child: &TaskPath) -> Result<(), StoreError> {
        let mut inner = self.inner.lock();
        inner.commit(data, child)?;
        inner.fsync_segment()
    }

    /// Persist a full-state snapshot of `data`, rotate the WAL, and
    /// delete the segments (and older snapshots) the new snapshot covers.
    pub fn snapshot<D: Persist>(&self, data: &D) -> Result<(), StoreError> {
        self.inner.lock().snapshot(data)
    }

    /// Flush the current segment to stable storage.
    pub fn sync(&self) -> Result<(), StoreError> {
        self.inner.lock().fsync_segment()
    }

    /// Journal the operations recorded since the last commit, if any,
    /// attributed to `child`, then fsync. Returns whether a record was
    /// appended. This is the explicit form of what [`StoreSink`] does
    /// when a program finishes — embedders with their own commit loop
    /// (e.g. a distributed coordinator shutting down) call it directly.
    pub fn commit_outstanding<D: Persist>(
        &self,
        data: &D,
        child: &TaskPath,
    ) -> Result<bool, StoreError> {
        let mut inner = self.inner.lock();
        let mut marks = Vec::new();
        data.history_marks(&mut marks);
        let appended = marks != inner.last_marks;
        if appended {
            inner.commit(data, child)?;
        }
        inner.fsync_segment()?;
        Ok(appended)
    }

    /// The first error a sink callback swallowed, if any. The sink
    /// interface is infallible, so failures stick here;
    /// [`run_with_store`] checks this after the program finishes.
    pub fn take_error(&self) -> Option<StoreError> {
        self.inner.lock().error.take()
    }

    /// Frame boundaries of every commit appended through this handle, in
    /// append order (crash-injection test introspection).
    pub fn frame_bounds(&self) -> Vec<FrameBound> {
        self.inner.lock().bounds.clone()
    }

    /// Sequence number of the last appended commit (0 = none yet).
    pub fn last_seq(&self) -> u64 {
        self.inner.lock().next_seq - 1
    }
}

impl Inner {
    fn commit<D: Persist>(&mut self, data: &D, child: &TaskPath) -> Result<(), StoreError> {
        if !self.started {
            return Err(StoreError::Corrupt(
                "commit before begin/recover: no genesis baseline exists".into(),
            ));
        }
        // Seal first: from here on, the bytes we export can no longer be
        // rewritten in place by tail fusion of later operations.
        data.seal_history();
        let mut ops_buf = BytesMut::new();
        let mut cursor = 0;
        let ops_count = data.encode_committed_since(&self.last_marks, &mut cursor, &mut ops_buf);
        let mut marks = Vec::new();
        data.history_marks(&mut marks);
        let ops = ops_buf.freeze();

        let seq = self.next_seq;
        let path = child.ids().to_vec();
        let prev = self.chains.get(&path).copied().unwrap_or(FNV_OFFSET);
        let chain = chain_update(prev, seq, ops.as_slice());
        let record = Record::Commit(CommitRecord {
            seq,
            child: path.clone(),
            marks: marks.clone(),
            ops,
            ops_count: ops_count as u64,
            chain,
        });
        self.append(&record, seq)?;
        self.chains.insert(path, chain);
        self.last_marks = marks;
        self.next_seq = seq + 1;
        self.ops_since_snapshot += ops_count as u64;
        if self.options.snapshot_every_ops > 0
            && self.ops_since_snapshot >= self.options.snapshot_every_ops
        {
            self.snapshot(data)?;
        }
        Ok(())
    }

    /// Frame `record` and append it to the current segment, rotating
    /// first when the segment is full, fsyncing per policy.
    fn append(&mut self, record: &Record, seq: u64) -> Result<(), StoreError> {
        let append_t0 = sm_obs::is_enabled().then(Instant::now);
        let payload = record.to_bytes();
        let mut framed = Vec::with_capacity(payload.len() + sm_net::frame::HEADER_LEN);
        encode_frame(payload.as_slice(), &mut framed);

        if self.segment.as_ref().is_some_and(|s| {
            s.bytes > 0 && s.bytes + framed.len() as u64 > self.options.segment_bytes
        }) {
            self.fsync_segment()?;
            self.open_segment(seq)?;
        }
        let segment = self
            .segment
            .as_mut()
            .expect("started store always has an open segment");
        segment.file.write_all(&framed)?;
        segment.bytes += framed.len() as u64;
        self.bounds.push(FrameBound {
            segment: segment.path.clone(),
            seq,
            end: segment.bytes,
        });

        let fsync_due = match self.options.fsync {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => self.appends_since_fsync + 1 >= n.max(1),
            FsyncPolicy::Interval(d) => self.last_fsync.elapsed() >= d,
        };
        let mut fsync_nanos = 0u64;
        if fsync_due {
            let t0 = sm_obs::is_enabled().then(Instant::now);
            self.fsync_segment()?;
            if let Some(t0) = t0 {
                fsync_nanos = t0.elapsed().as_nanos() as u64;
            }
        } else {
            self.appends_since_fsync += 1;
        }
        emit(&TaskPath::root(), || EventKind::WalAppended {
            bytes: framed.len(),
            fsynced: fsync_due,
            fsync_nanos,
        });
        if let Some(t0) = append_t0 {
            let total = t0.elapsed().as_nanos() as u64;
            // The fsync is reported as its own phase; the append phase
            // covers framing + write without it.
            sm_obs::timer::observe(
                &TaskPath::root(),
                sm_obs::Phase::WalAppend,
                total.saturating_sub(fsync_nanos),
            );
            sm_obs::timer::observe(&TaskPath::root(), sm_obs::Phase::WalFsync, fsync_nanos);
        }
        Ok(())
    }

    fn fsync_segment(&mut self) -> Result<(), StoreError> {
        if let Some(segment) = &mut self.segment {
            segment.file.sync_data()?;
        }
        self.appends_since_fsync = 0;
        self.last_fsync = Instant::now();
        Ok(())
    }

    pub(crate) fn open_segment(&mut self, first_seq: u64) -> Result<(), StoreError> {
        let path = self.dir.join(segment_name(first_seq));
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let bytes = file.metadata()?.len();
        self.segment = Some(Segment { file, path, bytes });
        Ok(())
    }

    fn snapshot<D: Persist>(&mut self, data: &D) -> Result<(), StoreError> {
        data.seal_history();
        let mut marks = Vec::new();
        data.history_marks(&mut marks);
        let covered = self.next_seq - 1;
        self.write_snapshot(data, covered, &marks)?;
        // Rotate to a fresh segment, then drop everything the snapshot
        // covers: older snapshots and every closed WAL segment (all of
        // their commits have seq ≤ covered by construction).
        self.fsync_segment()?;
        self.open_segment(self.next_seq)?;
        let current = self.segment.as_ref().map(|s| s.path.clone());
        for (seq, path) in list_files(&self.dir, "snap-")? {
            if seq < covered {
                fs::remove_file(path)?;
            }
        }
        for (_, path) in list_files(&self.dir, "wal-")? {
            if Some(&path) != current.as_ref() {
                fs::remove_file(path)?;
            }
        }
        self.bounds.retain(|b| Some(&b.segment) == current.as_ref());
        self.ops_since_snapshot = 0;
        Ok(())
    }

    /// Durably write `snap-<seq>`: temp file, fsync, atomic rename,
    /// directory fsync.
    fn write_snapshot<D: Persist>(
        &mut self,
        data: &D,
        seq: u64,
        marks: &[usize],
    ) -> Result<(), StoreError> {
        let t0 = sm_obs::is_enabled().then(Instant::now);
        let mut state = BytesMut::new();
        data.encode_state(&mut state);
        let record = Record::Snapshot(SnapshotRecord {
            seq,
            marks: marks.to_vec(),
            chains: self
                .chains
                .iter()
                .map(|(path, chain)| (path.clone(), *chain))
                .collect(),
            state: state.freeze(),
        });
        let payload = record.to_bytes();
        let mut framed = Vec::with_capacity(payload.len() + sm_net::frame::HEADER_LEN);
        encode_frame(payload.as_slice(), &mut framed);

        let final_path = self.dir.join(snapshot_name(seq));
        let tmp_path = self.dir.join(format!("{}.tmp", snapshot_name(seq)));
        let mut file = File::create(&tmp_path)?;
        file.write_all(&framed)?;
        file.sync_data()?;
        drop(file);
        fs::rename(&tmp_path, &final_path)?;
        File::open(&self.dir)?.sync_all()?;
        if let Some(t0) = t0 {
            let snapshot_nanos = t0.elapsed().as_nanos() as u64;
            emit(&TaskPath::root(), || EventKind::SnapshotTaken {
                bytes: framed.len(),
                snapshot_nanos,
            });
            sm_obs::timer::observe(
                &TaskPath::root(),
                sm_obs::Phase::SnapshotWrite,
                snapshot_nanos,
            );
        }
        Ok(())
    }
}

/// List `<prefix><seq>` files in `dir` as `(seq, path)`, ascending by
/// sequence. Ignores temp files and foreign names.
pub(crate) fn list_files(dir: &Path, prefix: &str) -> Result<Vec<(u64, PathBuf)>, StoreError> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(seq) = crate::wal::parse_seq(name, prefix) {
            out.push((seq, entry.path()));
        }
    }
    out.sort();
    Ok(out)
}

/// The [`CommitSink`] that journals a program into a [`Store`].
///
/// Sink callbacks cannot return errors, so the first failure is parked
/// in the store ([`Store::take_error`]) and journaling stops — the
/// program itself keeps running; durability degrades, correctness does
/// not.
pub struct StoreSink<D> {
    store: Store,
    _marker: PhantomData<fn(&D)>,
}

impl<D> StoreSink<D> {
    /// A sink journaling into `store`.
    pub fn new(store: Store) -> Self {
        StoreSink {
            store,
            _marker: PhantomData,
        }
    }
}

impl<D: Persist> CommitSink<D> for StoreSink<D> {
    fn committed(&mut self, data: &D, child: &TaskPath, _child_continues: bool) {
        let mut inner = self.store.inner.lock();
        if inner.error.is_some() {
            return;
        }
        if let Err(e) = inner.commit(data, child) {
            inner.error = Some(e);
        }
    }

    fn truncating(&mut self, data: &D, _watermark: &[usize]) {
        let mut inner = self.store.inner.lock();
        if inner.error.is_some() {
            return;
        }
        // GC may drop root-local operations recorded after the last merge
        // commit (when every live fork is younger than them). Journal the
        // outstanding slice first so replay never misses them.
        let result = (|| {
            let mut marks = Vec::new();
            data.history_marks(&mut marks);
            if marks != inner.last_marks {
                inner.commit(data, &TaskPath::root())?;
            }
            Ok(())
        })();
        if let Err(e) = result {
            inner.error = Some(e);
        }
    }

    fn finished(&mut self, data: &D) {
        let mut inner = self.store.inner.lock();
        if inner.error.is_some() {
            return;
        }
        // Journal any trailing root-local operations recorded after the
        // last merge commit, then make everything durable.
        let result = (|| {
            let mut marks = Vec::new();
            data.history_marks(&mut marks);
            if marks != inner.last_marks {
                inner.commit(data, &TaskPath::root())?;
            }
            inner.fsync_segment()
        })();
        if let Err(e) = result {
            inner.error = Some(e);
        }
    }
}

/// [`run_with_sink`](sm_core::run_with_sink) journaling into `store`:
/// writes the genesis baseline (unless the store was just recovered),
/// journals every root commit, and surfaces any store failure after the
/// program finishes.
///
/// On `Err`, the program's result is lost — callers that need the
/// in-memory result despite a broken journal should install a
/// [`StoreSink`] through `run_with_sink` directly and inspect
/// [`Store::take_error`] themselves.
pub fn run_with_store<D, R>(
    data: D,
    pool: Pool,
    store: &Store,
    root: impl FnOnce(&mut TaskCtx<D>) -> R,
) -> Result<(D, R), StoreError>
where
    D: Persist,
{
    store.begin(&data)?;
    let (data, result) = run_with_sink(data, pool, Box::new(StoreSink::new(store.clone())), root);
    match store.take_error() {
        Some(e) => Err(e),
        None => Ok((data, result)),
    }
}
