//! WAL record model: the two payload shapes the store frames into its
//! segment files, and the FNV digest chain that links commit records.
//!
//! Every record travels inside one [`sm_net::frame`] frame, so torn
//! writes and bit rot are detected before a payload byte is interpreted.
//! Payloads are encoded with the `sm_codec` primitives the wire layer
//! uses, starting with a one-byte tag:
//!
//! ```text
//! tag 1  Commit    seq · child path · marks · ops-count · ops bytes · chain
//! tag 2  Snapshot  seq · marks · per-path chains · state bytes
//! ```
//!
//! The `ops bytes` of a commit are exactly what
//! [`Persist::encode_committed_since`](sm_mergeable::Persist::encode_committed_since)
//! produced at the commit point, so recovery replays them through the
//! ordinary [`Persist::apply_log`](sm_mergeable::Persist::apply_log) OT
//! path. The `chain` field is the per-child-path FNV-1a hash chain after
//! folding in this record (see [`chain_update`]); a snapshot carries the
//! whole chain map so the verification survives log truncation.

use bytes::{Buf, BufMut};
/// The byte-buffer types record payloads are built from, re-exported so
/// tools (and tests) can construct or rewrite records without depending
/// on the buffer crate directly.
pub use bytes::{Bytes, BytesMut};
use sm_codec::{get_varint, put_varint, DecodeError};

/// FNV-1a offset basis — the same constants the `sm_obs` determinism
/// auditor uses, so the two digest families are directly comparable in
/// traces and test output.
pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_step(mut h: u64, bytes: &[u8]) -> u64 {
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Fold one commit into a path's chain: the previous chain value, the
/// commit's sequence number, then every serialized operation byte.
pub(crate) fn chain_update(prev: u64, seq: u64, ops: &[u8]) -> u64 {
    let h = fnv_step(prev, &seq.to_le_bytes());
    fnv_step(h, ops)
}

/// One journaled root-task merge commit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitRecord {
    /// Sequence number, contiguous from 1 within one store.
    pub seq: u64,
    /// `TaskPath` ids of the merged child.
    pub child: Vec<u64>,
    /// The root data's absolute history marks right after this commit.
    pub marks: Vec<usize>,
    /// Span-compacted operations encoded by `encode_committed_since`.
    pub ops: Bytes,
    /// Operation count inside `ops` (cross-check for replay).
    pub ops_count: u64,
    /// The child path's digest chain after folding this record in.
    pub chain: u64,
}

/// A full-state snapshot covering every commit with `seq <= self.seq`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotRecord {
    /// Last covered commit sequence (0 = genesis: nothing but the
    /// initial state).
    pub seq: u64,
    /// The root data's absolute history marks at the snapshot point.
    pub marks: Vec<usize>,
    /// Digest chain per child path, as of `seq`.
    pub chains: Vec<(Vec<u64>, u64)>,
    /// `Persist::encode_state` of the root data.
    pub state: Bytes,
}

/// A delta snapshot: the state at `seq` expressed against the full
/// snapshot at `base_seq` via
/// [`Persist::encode_state_delta`](sm_mergeable::Persist::encode_state_delta).
/// Purely an acceleration record — recovery that cannot pair it with its
/// base (or cannot decode it) falls back to the full snapshot plus a
/// longer replay, never to failure. Deltas therefore never authorize WAL
/// pruning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotDeltaRecord {
    /// Last covered commit sequence.
    pub seq: u64,
    /// Sequence of the full snapshot the delta is expressed against.
    pub base_seq: u64,
    /// The root data's absolute history marks at the snapshot point.
    pub marks: Vec<usize>,
    /// Digest chain per child path, as of `seq`.
    pub chains: Vec<(Vec<u64>, u64)>,
    /// `Persist::encode_state_delta` of the root data against the base.
    pub delta: Bytes,
}

/// A decoded WAL payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// Tag 1.
    Commit(CommitRecord),
    /// Tag 2.
    Snapshot(SnapshotRecord),
    /// Tag 3.
    SnapshotDelta(SnapshotDeltaRecord),
}

const TAG_COMMIT: u8 = 1;
const TAG_SNAPSHOT: u8 = 2;
const TAG_SNAPSHOT_DELTA: u8 = 3;

fn put_u64_list(buf: &mut BytesMut, vs: &[u64]) {
    put_varint(buf, vs.len() as u64);
    for v in vs {
        put_varint(buf, *v);
    }
}

fn get_u64_list(buf: &mut Bytes) -> Result<Vec<u64>, DecodeError> {
    let n = get_varint(buf)?;
    if n > buf.remaining() as u64 {
        // Each element takes at least one byte: a count beyond the
        // remaining bytes is a corrupt length prefix, not an allocation
        // request.
        return Err(DecodeError::BadLength(n));
    }
    let mut out = Vec::with_capacity(n as usize);
    for _ in 0..n {
        out.push(get_varint(buf)?);
    }
    Ok(out)
}

fn put_chains(buf: &mut BytesMut, chains: &[(Vec<u64>, u64)]) {
    put_varint(buf, chains.len() as u64);
    for (path, chain) in chains {
        put_u64_list(buf, path);
        put_varint(buf, *chain);
    }
}

fn get_chains(buf: &mut Bytes) -> Result<Vec<(Vec<u64>, u64)>, DecodeError> {
    let n = get_varint(buf)?;
    if n > buf.remaining() as u64 {
        return Err(DecodeError::BadLength(n));
    }
    let mut chains = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let path = get_u64_list(buf)?;
        let chain = get_varint(buf)?;
        chains.push((path, chain));
    }
    Ok(chains)
}

fn put_bytes(buf: &mut BytesMut, bytes: &[u8]) {
    put_varint(buf, bytes.len() as u64);
    buf.put_slice(bytes);
}

fn get_bytes(buf: &mut Bytes) -> Result<Bytes, DecodeError> {
    let n = get_varint(buf)?;
    if n > buf.remaining() as u64 {
        return Err(DecodeError::BadLength(n));
    }
    Ok(buf.split_to(n as usize))
}

impl Record {
    /// Serialize into `buf` (tag byte first).
    pub fn encode(&self, buf: &mut BytesMut) {
        match self {
            Record::Commit(c) => {
                buf.put_u8(TAG_COMMIT);
                put_varint(buf, c.seq);
                put_u64_list(buf, &c.child);
                let marks: Vec<u64> = c.marks.iter().map(|m| *m as u64).collect();
                put_u64_list(buf, &marks);
                put_varint(buf, c.ops_count);
                put_bytes(buf, c.ops.as_slice());
                put_varint(buf, c.chain);
            }
            Record::Snapshot(s) => {
                buf.put_u8(TAG_SNAPSHOT);
                put_varint(buf, s.seq);
                let marks: Vec<u64> = s.marks.iter().map(|m| *m as u64).collect();
                put_u64_list(buf, &marks);
                put_chains(buf, &s.chains);
                put_bytes(buf, s.state.as_slice());
            }
            Record::SnapshotDelta(s) => {
                buf.put_u8(TAG_SNAPSHOT_DELTA);
                put_varint(buf, s.seq);
                put_varint(buf, s.base_seq);
                let marks: Vec<u64> = s.marks.iter().map(|m| *m as u64).collect();
                put_u64_list(buf, &marks);
                put_chains(buf, &s.chains);
                put_bytes(buf, s.delta.as_slice());
            }
        }
    }

    /// Serialize to a fresh byte buffer.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::new();
        self.encode(&mut buf);
        buf.freeze()
    }

    /// Decode one record from `buf`.
    pub fn decode(buf: &mut Bytes) -> Result<Record, DecodeError> {
        if !buf.has_remaining() {
            return Err(DecodeError::UnexpectedEnd);
        }
        match buf.get_u8() {
            TAG_COMMIT => {
                let seq = get_varint(buf)?;
                let child = get_u64_list(buf)?;
                let marks = get_u64_list(buf)?.into_iter().map(|m| m as usize).collect();
                let ops_count = get_varint(buf)?;
                let ops = get_bytes(buf)?;
                let chain = get_varint(buf)?;
                Ok(Record::Commit(CommitRecord {
                    seq,
                    child,
                    marks,
                    ops,
                    ops_count,
                    chain,
                }))
            }
            TAG_SNAPSHOT => {
                let seq = get_varint(buf)?;
                let marks = get_u64_list(buf)?.into_iter().map(|m| m as usize).collect();
                let chains = get_chains(buf)?;
                let state = get_bytes(buf)?;
                Ok(Record::Snapshot(SnapshotRecord {
                    seq,
                    marks,
                    chains,
                    state,
                }))
            }
            TAG_SNAPSHOT_DELTA => {
                let seq = get_varint(buf)?;
                let base_seq = get_varint(buf)?;
                let marks = get_u64_list(buf)?.into_iter().map(|m| m as usize).collect();
                let chains = get_chains(buf)?;
                let delta = get_bytes(buf)?;
                Ok(Record::SnapshotDelta(SnapshotDeltaRecord {
                    seq,
                    base_seq,
                    marks,
                    chains,
                    delta,
                }))
            }
            tag => Err(DecodeError::BadTag(tag)),
        }
    }

    /// Decode a record that must occupy `bytes` exactly.
    pub fn from_bytes(bytes: &[u8]) -> Result<Record, DecodeError> {
        let mut buf = Bytes::copy_from_slice(bytes);
        let record = Record::decode(&mut buf)?;
        if buf.has_remaining() {
            return Err(DecodeError::BadLength(buf.remaining() as u64));
        }
        Ok(record)
    }
}

/// File name of the WAL segment whose first commit is `first_seq`.
pub(crate) fn segment_name(first_seq: u64) -> String {
    format!("wal-{first_seq:020}")
}

/// File name of the snapshot covering commits `..= seq`.
pub(crate) fn snapshot_name(seq: u64) -> String {
    format!("snap-{seq:020}")
}

/// File name of the delta snapshot covering commits `..= seq`. The
/// `snap-delta-` prefix does not collide with `snap-` listings: the
/// residue after stripping `snap-` is not numeric, so
/// [`parse_seq`]-based listings skip it.
pub(crate) fn snapshot_delta_name(seq: u64) -> String {
    format!("snap-delta-{seq:020}")
}

/// Parse a `wal-…` / `snap-…` file name back into its sequence number.
pub(crate) fn parse_seq(name: &str, prefix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_record_roundtrips() {
        let rec = Record::Commit(CommitRecord {
            seq: 42,
            child: vec![0, 3, 1],
            marks: vec![10, 0, 7],
            ops: Bytes::copy_from_slice(&[1, 2, 3, 4]),
            ops_count: 2,
            chain: u64::MAX - 5,
        });
        let bytes = rec.to_bytes();
        assert_eq!(Record::from_bytes(bytes.as_slice()).unwrap(), rec);
    }

    #[test]
    fn snapshot_record_roundtrips() {
        let rec = Record::Snapshot(SnapshotRecord {
            seq: 7,
            marks: vec![3],
            chains: vec![(vec![0, 1], 99), (vec![0, 2], FNV_OFFSET)],
            state: Bytes::copy_from_slice(b"state-bytes"),
        });
        let bytes = rec.to_bytes();
        assert_eq!(Record::from_bytes(bytes.as_slice()).unwrap(), rec);
    }

    #[test]
    fn adversarial_lengths_error_instead_of_allocating() {
        // A commit whose ops-length prefix claims more bytes than exist.
        let mut buf = BytesMut::new();
        buf.put_u8(TAG_COMMIT);
        put_varint(&mut buf, 1); // seq
        put_varint(&mut buf, 0); // empty path
        put_varint(&mut buf, 0); // empty marks
        put_varint(&mut buf, 0); // ops_count
        put_varint(&mut buf, u64::MAX); // ops length: absurd
        let err = Record::from_bytes(buf.freeze().as_slice()).unwrap_err();
        assert_eq!(err, DecodeError::BadLength(u64::MAX));

        // Unknown tag.
        assert_eq!(
            Record::from_bytes(&[9]).unwrap_err(),
            DecodeError::BadTag(9)
        );

        // Trailing garbage after a valid record.
        let rec = Record::Snapshot(SnapshotRecord {
            seq: 0,
            marks: vec![],
            chains: vec![],
            state: Bytes::new(),
        });
        let mut bytes = rec.to_bytes().to_vec();
        bytes.push(0xAB);
        assert!(Record::from_bytes(&bytes).is_err());
    }

    #[test]
    fn chain_is_order_and_content_sensitive() {
        let a = chain_update(FNV_OFFSET, 1, b"ops-a");
        let b = chain_update(a, 2, b"ops-b");
        let b_swapped = chain_update(chain_update(FNV_OFFSET, 2, b"ops-b"), 1, b"ops-a");
        assert_ne!(b, b_swapped);
        assert_ne!(chain_update(a, 2, b"ops-c"), b);
        assert_ne!(chain_update(a, 3, b"ops-b"), b);
    }

    #[test]
    fn file_names_sort_numerically() {
        let names = [segment_name(2), segment_name(10), segment_name(100)];
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        assert_eq!(parse_seq(&segment_name(17), "wal-"), Some(17));
        assert_eq!(parse_seq(&snapshot_name(0), "snap-"), Some(0));
        assert_eq!(parse_seq("other-file", "wal-"), None);
    }
}
