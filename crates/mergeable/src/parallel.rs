//! The parallel merge-staging engine: off-thread rebasing that is
//! **bit-identical** to the sequential creation-order fold.
//!
//! # The seam
//!
//! [`Mergeable::stage_merge_all`](crate::Mergeable::stage_merge_all) turns
//! a batch of forked children into a [`StagedCommit`]: a hand-off object
//! whose workers pre-compute each child's rebased operation run on an
//! executor while the parent thread walks the children *in creation
//! order* committing run `0`, run `1`, … exactly as `merge` would have.
//! The commit path ([`Versioned::commit_staged`]) re-derives every field
//! the determinism auditor hashes (`child_ops`, `applied_ops`,
//! `committed_ops`, and the post-fusion `oplog_len`) from the live parent
//! log, so the observable event stream cannot diverge from the
//! sequential schedule by construction — and debug builds recompute the
//! sequential rebase at every commit and assert the staged run matches
//! operation for operation.
//!
//! # Two lanes
//!
//! **Delta lane** ([`stage_versioned_delta`]) — for insert-only sequence
//! batches sharing one fork base (the overwhelming fan-out shape: every
//! child appends its results). Sibling logs fold into normalized
//! span-set deltas over the fork-base coordinates and reduce pairwise:
//! each chunk of siblings folds its local composite in parallel, the
//! chunk composites sequence in O(#chunks) combines, and each chunk then
//! transforms its members against its start composite concurrently —
//! O(log-depth) critical path in the reduction sense, and, just as
//! important, the committed composite is built *incrementally* instead
//! of refolded from the whole committed log per child, collapsing the
//! sequential fold's O(n³) total work at high fan-out. The unique normal
//! form of insert-only deltas makes every re-association of
//! `combine(a, b) = a ∘ T(b, a)` produce the same normalized delta, so
//! the re-materialized runs equal the sequential ones span for span.
//!
//! **Serial lane** ([`stage_versioned`]) — everything else (deletes,
//! `Set`s, mixed fork bases, non-sequence algebras). One worker replays
//! the exact sequential rebase pipeline against a [`LogReplica`] — same
//! rebase kernel, same tail-fusion rules, same fuse barrier — so a
//! composite structure can still stage *fields* in parallel: each field's
//! lane runs concurrently with every other field's even when no single
//! field parallelizes internally. That is the field-parallel merge of
//! tuple / `mergeable_struct!` data.
//!
//! Neither lane ever blocks event collection and the parent commits in
//! creation order, so the schedule of observable effects is the
//! sequential one; only wall-clock (never hashed) differs.

use std::sync::mpsc::{channel, Receiver};
use std::sync::Arc;
use std::time::Instant;

use sm_ot::delta::{from_ops_biased, Delta, DeltaOp, DeltaPayload, GapBias, OpSpan};
use sm_ot::Operation;

use crate::versioned::rebase_over;
use crate::{MergeError, MergeStats, Mergeable, Versioned};

/// A unit of staging work shipped to the executor.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// A clonable handle that runs staging jobs — in the runtime this wraps
/// the task pool's `execute`; tests and defaults use [`inline_exec`].
pub type ExecHandle = Arc<dyn Fn(Job) + Send + Sync>;

/// An executor that runs every job synchronously on the calling thread.
/// Staging through it is pure overhead but exercises the identical code
/// path — useful as a differential harness and as a safe default.
pub fn inline_exec() -> ExecHandle {
    Arc::new(|job: Job| job())
}

/// Everything a staging lane needs to know about its environment.
#[derive(Clone)]
pub struct StageCtx {
    /// Where staging jobs run.
    pub exec: ExecHandle,
    /// Target number of parallel chunks for the delta lane (≥ 1).
    pub lanes: usize,
    /// Minimum child-side op count for a *field* of a composite to be
    /// merged on its own worker in
    /// [`Mergeable::merge_with_exec`](crate::Mergeable::merge_with_exec);
    /// smaller fields merge inline.
    pub field_min_ops: usize,
    /// Whether an `sm_obs` recorder is installed: gates every clock read
    /// so uninstalled staging reads no clocks, like the sequential path.
    pub timing: bool,
}

impl StageCtx {
    /// A context that runs everything inline on the calling thread.
    pub fn inline() -> Self {
        StageCtx {
            exec: inline_exec(),
            lanes: 1,
            field_min_ops: usize::MAX,
            timing: false,
        }
    }
}

impl std::fmt::Debug for StageCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StageCtx")
            .field("lanes", &self.lanes)
            .field("field_min_ops", &self.field_min_ops)
            .field("timing", &self.timing)
            .finish_non_exhaustive()
    }
}

/// Shape of the staging plan a [`StagedCommit`] built, for telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageProfile {
    /// Leaves staged on the chunked delta lane.
    pub delta_leaves: usize,
    /// Leaves staged on the serial-replay lane (or committed inline).
    pub serial_leaves: usize,
    /// Total parallel chunks across all delta-lane leaves.
    pub chunks: usize,
}

impl std::ops::AddAssign for StageProfile {
    fn add_assign(&mut self, rhs: Self) {
        self.delta_leaves += rhs.delta_leaves;
        self.serial_leaves += rhs.serial_leaves;
        self.chunks += rhs.chunks;
    }
}

/// A staged batch merge: pre-rebased runs for children `0..n` of one
/// batch, committed one child at a time in creation order.
///
/// `commit` must be called with the same parent the batch was staged
/// from, the same child data in the same order, and each index exactly
/// once, with no other mutation of the parent's mergeable state in
/// between — the runtime's `merge_all` upholds this by construction.
pub trait StagedCommit<D> {
    /// Merge child `index`'s staged run into `parent`, blocking only if
    /// that child's staging work has not finished yet. Equivalent to
    /// `parent.merge(child)` — same result, same stats.
    fn commit(&mut self, parent: &mut D, child: &D, index: usize)
        -> Result<MergeStats, MergeError>;

    /// The plan shape, for the `MergeStaged` telemetry event.
    fn profile(&self) -> StageProfile;
}

/// One pre-rebased run plus the stats measured while staging it.
struct StagedRun<O> {
    run: Vec<O>,
    pre: MergeStats,
    /// True when the lane reports compaction counters as raw lengths
    /// (the delta path's convention).
    raw_compacted: bool,
}

/// The leaf [`StagedCommit`] over a single [`Versioned`] log: collects
/// `(index, run)` pairs from the lane workers and commits them in order.
struct StagedLeaf<O: Operation> {
    slots: Vec<Option<StagedRun<O>>>,
    rx: Receiver<(usize, StagedRun<O>)>,
    profile: StageProfile,
    timing: bool,
}

impl<O: Operation> StagedLeaf<O> {
    fn take(&mut self, index: usize) -> StagedRun<O> {
        while self.slots[index].is_none() {
            let (i, staged) = self
                .rx
                .recv()
                .expect("a merge-staging worker died before delivering its rebased run");
            self.slots[i] = Some(staged);
        }
        self.slots[index].take().expect("filled above")
    }
}

impl<O: Operation> StagedCommit<Versioned<O>> for StagedLeaf<O> {
    fn commit(
        &mut self,
        parent: &mut Versioned<O>,
        child: &Versioned<O>,
        index: usize,
    ) -> Result<MergeStats, MergeError> {
        let staged = self.take(index);
        parent.commit_staged(
            child,
            staged.run,
            staged.pre,
            staged.raw_compacted,
            self.timing,
        )
    }

    fn profile(&self) -> StageProfile {
        self.profile
    }
}

/// A log-only stand-in for the parent's `Versioned` that can cross
/// threads (the state cannot, and rebasing never needs it): the committed
/// log, its absolute start, and the fuse barrier captured at staging
/// time. `extend` mirrors `Versioned`'s tail-fusion rules exactly, so the
/// committed slice each staged child rebases against is byte-identical
/// to what the sequential schedule would have seen.
struct LogReplica<O: Operation> {
    log: Vec<O>,
    log_start: usize,
    barrier: usize,
}

impl<O: Operation> LogReplica<O> {
    fn suffix(&self, fork_base: usize) -> &[O] {
        &self.log[fork_base - self.log_start..]
    }

    fn extend(&mut self, ops: &[O]) {
        for op in ops {
            if !self.log.is_empty() && self.log_start + self.log.len() > self.barrier {
                let last = self.log.last().expect("non-empty");
                if Operation::annihilates(last, op) {
                    self.log.pop();
                    continue;
                }
                if let Some(fused) = Operation::compose(last, op) {
                    *self.log.last_mut().expect("non-empty") = fused;
                    continue;
                }
            }
            self.log.push(op.clone());
        }
    }
}

/// Stage a batch on the **serial lane**: one worker replays the exact
/// sequential rebase pipeline — per child, rebase over the replica's
/// committed suffix from its fork base, then extend the replica with the
/// run under the same fusion rules. Returns `None` only when a child's
/// fork point does not lie inside the parent's retained history (the
/// sequential path is then the one that must surface the error).
pub fn stage_versioned<O: Operation>(
    parent: &Versioned<O>,
    children: &[&Versioned<O>],
    ctx: &StageCtx,
) -> Option<Box<dyn StagedCommit<Versioned<O>>>> {
    if children.is_empty() {
        return None;
    }
    let lo = parent.log_start();
    let hi = parent.history_len();
    if children
        .iter()
        .any(|c| c.fork_base() < lo || c.fork_base() > hi)
    {
        return None;
    }
    let mut replica = LogReplica {
        log: parent.log().to_vec(),
        log_start: lo,
        barrier: parent.barrier_value(),
    };
    let work: Vec<(usize, Vec<O>)> = children
        .iter()
        .map(|c| (c.fork_base(), c.log().to_vec()))
        .collect();
    let (tx, rx) = channel();
    let timing = ctx.timing;
    (ctx.exec)(Box::new(move || {
        for (i, (fork_base, log)) in work.into_iter().enumerate() {
            let (run, pre) = rebase_over(&log, replica.suffix(fork_base), timing);
            replica.extend(&run);
            let _ = tx.send((
                i,
                StagedRun {
                    run,
                    pre,
                    raw_compacted: false,
                },
            ));
        }
    }));
    Some(Box::new(StagedLeaf {
        slots: (0..children.len()).map(|_| None).collect(),
        rx,
        profile: StageProfile {
            delta_leaves: 0,
            serial_leaves: 1,
            chunks: 1,
        },
        timing,
    }))
}

/// True when every op is a span-expressible insert of at least one unit —
/// the shape for which insert-only deltas have a unique normal form and
/// the sequential path is guaranteed to take the delta rebase at every
/// step of the fold.
fn insert_only<O: DeltaOp>(ops: &[O]) -> bool {
    ops.iter().all(|op| match op.to_span() {
        Some(OpSpan::Insert { payload, .. }) => payload.unit_len() >= 1,
        _ => false,
    })
}

/// `committed ∘ T(next, committed)`: extend a committed composite delta
/// by one more sibling's delta, exactly the step the sequential fold
/// performs when it commits that sibling's rebased run.
fn combine<P: DeltaPayload>(committed: &Delta<P>, next: &Delta<P>) -> Delta<P> {
    let (_, rebased) = committed.transform(next);
    committed.compose(&rebased)
}

/// Saturating elapsed nanoseconds since `t0`.
fn elapsed_nanos(t0: Instant) -> u64 {
    t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
}

/// One chunk's pass-A report: its members' deltas plus their local
/// composite.
type ChunkFold<P> = (Vec<Delta<P>>, Delta<P>);

/// Stage a batch on the **delta lane** when the batch qualifies
/// (insert-only sequence logs, one shared in-history fork base, non-empty
/// committed slice), falling back to the serial lane otherwise.
///
/// The plan: siblings are split into `ctx.lanes` chunks. Pass A folds
/// each chunk's logs into deltas and its local composite concurrently;
/// a coordinator then sequences the chunk-start composites (`#chunks`
/// combines) and fans out pass B, where each chunk walks its members
/// against a running committed composite, emitting every member's
/// rebased run. All reductions re-associate `combine`, which for
/// insert-only deltas is exact down to the span representation.
pub fn stage_versioned_delta<O: DeltaOp>(
    parent: &Versioned<O>,
    children: &[&Versioned<O>],
    ctx: &StageCtx,
) -> Option<Box<dyn StagedCommit<Versioned<O>>>> {
    if children.is_empty() {
        return None;
    }
    let lo = parent.log_start();
    let hi = parent.history_len();
    let fork_base = children[0].fork_base();
    let qualified = fork_base >= lo
        && fork_base <= hi
        && children
            .iter()
            .all(|c| c.fork_base() == fork_base && !c.log().is_empty() && insert_only(c.log()))
        && {
            let committed = &parent.log()[fork_base - lo..];
            !committed.is_empty() && insert_only(committed)
        };
    if !qualified {
        return stage_versioned(parent, children, ctx);
    }

    let c0 = from_ops_biased(&parent.log()[fork_base - lo..], GapBias::Start)
        .expect("insert-only ops are span-expressible");
    let n = children.len();
    let lanes = ctx.lanes.clamp(1, n);
    let chunk_len = n.div_ceil(lanes);
    let logs: Vec<Vec<Vec<O>>> = children
        .chunks(chunk_len)
        .map(|chunk| chunk.iter().map(|c| c.log().to_vec()).collect())
        .collect();
    let chunks = logs.len();
    let timing = ctx.timing;

    // Pass A (parallel per chunk): fold each sibling log into a delta
    // over the fork-base coordinates and reduce the chunk's local
    // composite.
    let (fold_tx, fold_rx) = channel();
    for (k, chunk) in logs.into_iter().enumerate() {
        let fold_tx = fold_tx.clone();
        (ctx.exec)(Box::new(move || {
            let ds: Vec<Delta<O::Payload>> = chunk
                .iter()
                .map(|log| {
                    from_ops_biased(log, GapBias::End)
                        .expect("insert-only ops are span-expressible")
                })
                .collect();
            let mut total: Option<Delta<O::Payload>> = None;
            for d in &ds {
                total = Some(match total {
                    None => d.clone(),
                    Some(t) => combine(&t, d),
                });
            }
            let total = total.expect("chunks are non-empty");
            let _ = fold_tx.send((k, ds, total));
        }));
    }
    drop(fold_tx);

    // Coordinator: sequence the chunk-start composites, fan out pass B.
    let (slot_tx, slot_rx) = channel();
    let exec = Arc::clone(&ctx.exec);
    (ctx.exec)(Box::new(move || {
        let mut folds: Vec<Option<ChunkFold<O::Payload>>> = (0..chunks).map(|_| None).collect();
        for _ in 0..chunks {
            let (k, ds, total) = fold_rx
                .recv()
                .expect("a delta-staging fold worker died before reporting");
            folds[k] = Some((ds, total));
        }
        let mut base = c0;
        for (k, fold) in folds.into_iter().enumerate() {
            let (ds, total) = fold.expect("every chunk reported above");
            let next_base = combine(&base, &total);
            let slot_tx = slot_tx.clone();
            let chunk_base = base.clone();
            let start = k * chunk_len;
            // Pass B (parallel per chunk): walk the chunk's members
            // against a running committed composite — identical to the
            // sequential fold's committed delta at each member, by the
            // insert-only normal form.
            exec(Box::new(move || {
                let mut committed = chunk_base;
                for (t, d) in ds.into_iter().enumerate() {
                    let t0 = timing.then(Instant::now);
                    let (_, rebased) = committed.transform(&d);
                    let pre = MergeStats {
                        delta_rebases: 1,
                        delta_spans: committed.span_count() + d.span_count(),
                        delta_nanos: t0.map_or(0, elapsed_nanos),
                        ..MergeStats::default()
                    };
                    committed = committed.compose(&rebased);
                    let _ = slot_tx.send((
                        start + t,
                        StagedRun {
                            run: rebased.into_ops(),
                            pre,
                            raw_compacted: true,
                        },
                    ));
                }
            }));
            base = next_base;
        }
    }));

    Some(Box::new(StagedLeaf {
        slots: (0..n).map(|_| None).collect(),
        rx: slot_rx,
        profile: StageProfile {
            delta_leaves: 1,
            serial_leaves: 0,
            chunks,
        },
        timing,
    }))
}

/// Lift a leaf stage over a projection (façade `inner` field, tuple
/// element, struct field).
struct MappedStage<D, F> {
    get: Box<dyn for<'a> Fn(&'a D) -> &'a F>,
    get_mut: Box<dyn for<'a> Fn(&'a mut D) -> &'a mut F>,
    stage: Box<dyn StagedCommit<F>>,
}

impl<D, F> StagedCommit<D> for MappedStage<D, F> {
    fn commit(
        &mut self,
        parent: &mut D,
        child: &D,
        index: usize,
    ) -> Result<MergeStats, MergeError> {
        let c = (self.get)(child);
        self.stage.commit((self.get_mut)(parent), c, index)
    }

    fn profile(&self) -> StageProfile {
        self.stage.profile()
    }
}

/// A field with no staging seam of its own: committed by plain
/// sequential `merge` at commit time, inside the batch walk.
struct InlineStage<D, F: Mergeable> {
    get: Box<dyn for<'a> Fn(&'a D) -> &'a F>,
    get_mut: Box<dyn for<'a> Fn(&'a mut D) -> &'a mut F>,
}

impl<D, F: Mergeable> StagedCommit<D> for InlineStage<D, F> {
    fn commit(
        &mut self,
        parent: &mut D,
        child: &D,
        _index: usize,
    ) -> Result<MergeStats, MergeError> {
        let c = (self.get)(child);
        (self.get_mut)(parent).merge(c)
    }

    fn profile(&self) -> StageProfile {
        StageProfile {
            delta_leaves: 0,
            serial_leaves: 1,
            chunks: 0,
        }
    }
}

/// Lift an optional leaf stage over a field projection: staged fields
/// commit their pre-rebased runs, seamless fields merge inline. Used by
/// the tuple and [`mergeable_struct!`](crate::mergeable_struct) derives.
pub fn project_stage<D, F, G, H>(
    get: G,
    get_mut: H,
    stage: Option<Box<dyn StagedCommit<F>>>,
) -> Box<dyn StagedCommit<D>>
where
    D: 'static,
    F: Mergeable,
    G: for<'a> Fn(&'a D) -> &'a F + 'static,
    H: for<'a> Fn(&'a mut D) -> &'a mut F + 'static,
{
    match stage {
        Some(stage) => Box::new(MappedStage {
            get: Box::new(get),
            get_mut: Box::new(get_mut),
            stage,
        }),
        None => Box::new(InlineStage {
            get: Box::new(get),
            get_mut: Box::new(get_mut),
        }),
    }
}

/// [`project_stage`] for a required stage with no `Mergeable` bound on
/// the projected field — the façade-to-[`Versioned`] hop.
pub fn map_stage<D, F, G, H>(
    get: G,
    get_mut: H,
    stage: Box<dyn StagedCommit<F>>,
) -> Box<dyn StagedCommit<D>>
where
    D: 'static,
    F: 'static,
    G: for<'a> Fn(&'a D) -> &'a F + 'static,
    H: for<'a> Fn(&'a mut D) -> &'a mut F + 'static,
{
    Box::new(MappedStage {
        get: Box::new(get),
        get_mut: Box::new(get_mut),
        stage,
    })
}

/// Field-wise composite of per-field stages: commits every field of one
/// child (in declaration order, summing stats) before moving on, exactly
/// like the sequential field-wise merge.
pub struct FieldStage<D> {
    fields: Vec<Box<dyn StagedCommit<D>>>,
}

impl<D> FieldStage<D> {
    /// Compose per-field stages in field declaration order.
    pub fn new(fields: Vec<Box<dyn StagedCommit<D>>>) -> Self {
        FieldStage { fields }
    }
}

impl<D> StagedCommit<D> for FieldStage<D> {
    fn commit(
        &mut self,
        parent: &mut D,
        child: &D,
        index: usize,
    ) -> Result<MergeStats, MergeError> {
        let mut stats = MergeStats::default();
        for field in &mut self.fields {
            stats += field.commit(parent, child, index)?;
        }
        Ok(stats)
    }

    fn profile(&self) -> StageProfile {
        let mut p = StageProfile::default();
        for field in &self.fields {
            p += field.profile();
        }
        p
    }
}

/// Per-element stage for `Vec<M>` composites.
pub(crate) struct IndexStage<M: Mergeable> {
    pub(crate) idx: usize,
    pub(crate) stage: Option<Box<dyn StagedCommit<M>>>,
}

impl<M: Mergeable> StagedCommit<Vec<M>> for IndexStage<M> {
    fn commit(
        &mut self,
        parent: &mut Vec<M>,
        child: &Vec<M>,
        index: usize,
    ) -> Result<MergeStats, MergeError> {
        let c = &child[self.idx];
        let p = &mut parent[self.idx];
        match &mut self.stage {
            Some(stage) => stage.commit(p, c, index),
            None => p.merge(c),
        }
    }

    fn profile(&self) -> StageProfile {
        match &self.stage {
            Some(stage) => stage.profile(),
            None => StageProfile {
                delta_leaves: 0,
                serial_leaves: 1,
                chunks: 0,
            },
        }
    }
}

/// Receiver for one composite field being merged on its own worker.
pub type FieldMergeJob<M> = Receiver<Result<(M, MergeStats), MergeError>>;

/// Ship one composite field's merge to the executor when the child side
/// is large enough (`ctx.field_min_ops`) to pay for the clone; `None`
/// means merge it inline. The worker merges *clones* of both sides —
/// deterministically the same result and stats as merging in place —
/// and sends the merged field back wholesale.
pub fn spawn_field_merge<M: Mergeable>(
    parent: &M,
    child: &M,
    ctx: &StageCtx,
) -> Option<FieldMergeJob<M>> {
    if child.pending_ops() < ctx.field_min_ops {
        return None;
    }
    let (tx, rx) = channel();
    let mut mine = parent.clone();
    let theirs = child.clone();
    (ctx.exec)(Box::new(move || {
        let result = match mine.merge(&theirs) {
            Ok(stats) => Ok((mine, stats)),
            Err(e) => Err(e),
        };
        let _ = tx.send(result);
    }));
    Some(rx)
}

/// Collect one field's off-thread merge, installing the merged field in
/// place. Field-order error semantics match the sequential fold: fields
/// before a failure are committed, fields after it are untouched.
pub fn recv_field_merge<M: Mergeable>(
    parent: &mut M,
    rx: FieldMergeJob<M>,
) -> Result<MergeStats, MergeError> {
    let (merged, stats) = rx
        .recv()
        .expect("a field-merge worker died before reporting")?;
    *parent = merged;
    Ok(stats)
}

/// The stage for `()`: nothing to rebase, nothing to commit.
pub(crate) struct NoopStage;

impl StagedCommit<()> for NoopStage {
    fn commit(
        &mut self,
        _parent: &mut (),
        _child: &(),
        _index: usize,
    ) -> Result<MergeStats, MergeError> {
        Ok(MergeStats::default())
    }

    fn profile(&self) -> StageProfile {
        StageProfile::default()
    }
}
