//! The parallel merge-staging engine: off-thread rebasing that is
//! **bit-identical** to the sequential creation-order fold.
//!
//! # The seam
//!
//! [`Mergeable::stage_merge_all`](crate::Mergeable::stage_merge_all) turns
//! a batch of forked children into a [`StagedCommit`]: a hand-off object
//! whose workers pre-compute each child's rebased operation run on an
//! executor while the parent thread walks the children *in creation
//! order* committing run `0`, run `1`, … exactly as `merge` would have.
//! The commit path ([`Versioned::commit_staged`]) re-derives every field
//! the determinism auditor hashes (`child_ops`, `applied_ops`,
//! `committed_ops`, and the post-fusion `oplog_len`) from the live parent
//! log, so the observable event stream cannot diverge from the
//! sequential schedule by construction — and debug builds recompute the
//! sequential rebase at every commit and assert the staged run matches
//! operation for operation.
//!
//! # Three lanes
//!
//! **Insert-only delta lane** ([`stage_versioned_delta`]) — for
//! insert-only sequence batches sharing one fork base (the overwhelming
//! fan-out shape: every child appends its results). Sibling logs fold
//! into normalized span-set deltas over the fork-base coordinates and
//! reduce pairwise: each chunk of siblings folds its local composite in
//! parallel, the chunk composites sequence in O(#chunks) combines, and
//! each chunk then transforms its members against its start composite
//! concurrently — O(log-depth) critical path in the reduction sense,
//! and, just as important, the committed composite is built
//! *incrementally* instead of refolded from the whole committed log per
//! child, collapsing the sequential fold's O(n³) total work at high
//! fan-out. The unique normal form of insert-only deltas makes every
//! re-association of `combine(a, b) = a ∘ T(b, a)` produce the same
//! normalized delta, so the re-materialized runs equal the sequential
//! ones span for span.
//!
//! **Mixed delta lane** (also [`stage_versioned_delta`]) — batches whose
//! logs mix inserts and deletes (still span-expressible, one shared
//! fork base). Deletes forfeit the insert-only re-association proof, so
//! this lane parallelizes only the *folds* (each chunk of sibling logs
//! folds to deltas concurrently; a huge single log additionally
//! split/fuses across segment workers, see below) and keeps the
//! committed-composite walk on one worker, performing **exactly** the
//! delta-level operations of the sequential kernel in the same order:
//! screen with [`Delta::rebase_is_order_sensitive`], transform, compose.
//! When the screen fires for a member, that member and every later one
//! in the batch fall back per-child to the plain sequential merge (the
//! poison protocol below) — per-batch fallback, not global.
//!
//! **Serial lane** ([`stage_versioned`]) — everything else (`Set`s,
//! mixed fork bases, non-sequence algebras). One worker replays the
//! exact sequential rebase pipeline against a [`LogReplica`] — same
//! rebase kernel, same tail-fusion rules, same fuse barrier, including
//! the per-commit history *seal* a durable `CommitSink` performs when
//! `StageCtx::seal_per_commit` is set — so a composite structure can
//! still stage *fields* in parallel: each field's lane runs concurrently
//! with every other field's even when no single field parallelizes
//! internally. That is the field-parallel merge of tuple /
//! `mergeable_struct!` data.
//!
//! # Split/fuse for one huge log
//!
//! A single ≥[`StageCtx::split_min_ops`]-op log (one 10⁶-op child, or a
//! long committed slice) no longer serializes its own fold: the staging
//! thread segments the log, ships each segment's fold to an executor
//! worker, and fuses the segment composites in order under the log's
//! [`GapBias`] — exact because composition under a fixed bias is
//! associative ([`sm_ot::delta::from_ops_chunked`] is the sequential
//! oracle for this plan).
//!
//! # The poison protocol
//!
//! Lane workers send `(index, Option<StagedRun>)`; `None` marks a member
//! the lane could not stage exactly (order-sensitivity screen fire, or a
//! span-inexpressible op discovered mid-fold). Commits happen in index
//! order, and the first consumed `None` **poisons** the leaf: that child
//! and every later child in the batch commit through the plain
//! sequential `merge` (the exact kernel, grid fallback included), and
//! stale staged runs still arriving from in-flight workers are ignored.
//! The committed outcome is therefore always the sequential one — a
//! staged prefix that is bit-identical by construction, then a plainly
//! merged suffix. Fallbacks are counted in `MergeStats::screen_rejects`.
//!
//! No lane ever blocks event collection and the parent commits in
//! creation order, so the schedule of observable effects is the
//! sequential one; only wall-clock (never hashed) differs.

use std::sync::mpsc::{channel, Receiver};
use std::sync::Arc;
use std::time::Instant;

use sm_ot::compose::shape_of_log;
use sm_ot::delta::{from_ops_biased, Delta, DeltaOp, DeltaPayload, GapBias};
use sm_ot::{OpShape, Operation};

use crate::versioned::rebase_over;
use crate::{LogShape, MergeError, MergeStats, Mergeable, Versioned};

/// A unit of staging work shipped to the executor.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// A clonable handle that runs staging jobs — in the runtime this wraps
/// the task pool's `execute`; tests and defaults use [`inline_exec`].
pub type ExecHandle = Arc<dyn Fn(Job) + Send + Sync>;

/// An executor that runs every job synchronously on the calling thread.
/// Staging through it is pure overhead but exercises the identical code
/// path — useful as a differential harness and as a safe default.
pub fn inline_exec() -> ExecHandle {
    Arc::new(|job: Job| job())
}

/// Everything a staging lane needs to know about its environment.
#[derive(Clone)]
pub struct StageCtx {
    /// Where staging jobs run.
    pub exec: ExecHandle,
    /// Target number of parallel chunks for the delta lane (≥ 1).
    pub lanes: usize,
    /// Minimum child-side op count for a *field* of a composite to be
    /// merged on its own worker in
    /// [`Mergeable::merge_with_exec`](crate::Mergeable::merge_with_exec);
    /// smaller fields merge inline.
    pub field_min_ops: usize,
    /// Minimum op count at which a *single* log's fold is split across
    /// segment workers and fused in order ([`from_ops_chunked`]
    /// semantics); `usize::MAX` disables the split.
    ///
    /// [`from_ops_chunked`]: sm_ot::delta::from_ops_chunked
    pub split_min_ops: usize,
    /// Whether a durable `CommitSink` is installed on the runtime: the
    /// sink seals the parent's fusible history after *every* commit, so
    /// the serial lane's [`LogReplica`] must move its fuse barrier the
    /// same way or staged tail fusion would diverge from the sequential
    /// schedule.
    pub seal_per_commit: bool,
    /// Whether an `sm_obs` recorder is installed: gates every clock read
    /// so uninstalled staging reads no clocks, like the sequential path.
    pub timing: bool,
}

impl StageCtx {
    /// A context that runs everything inline on the calling thread.
    pub fn inline() -> Self {
        StageCtx {
            exec: inline_exec(),
            lanes: 1,
            field_min_ops: usize::MAX,
            split_min_ops: usize::MAX,
            seal_per_commit: false,
            timing: false,
        }
    }
}

impl std::fmt::Debug for StageCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StageCtx")
            .field("lanes", &self.lanes)
            .field("field_min_ops", &self.field_min_ops)
            .field("split_min_ops", &self.split_min_ops)
            .field("seal_per_commit", &self.seal_per_commit)
            .field("timing", &self.timing)
            .finish_non_exhaustive()
    }
}

/// Shape of the staging plan a [`StagedCommit`] built, for telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageProfile {
    /// Leaves staged on the chunked delta lane (insert-only or mixed).
    pub delta_leaves: usize,
    /// Delta-lane leaves that took the fold-parallel *mixed* plan
    /// (a subset of `delta_leaves`).
    pub mixed_leaves: usize,
    /// Leaves staged on the serial-replay lane (or committed inline).
    pub serial_leaves: usize,
    /// Total parallel chunks across all delta-lane leaves.
    pub chunks: usize,
}

impl std::ops::AddAssign for StageProfile {
    fn add_assign(&mut self, rhs: Self) {
        self.delta_leaves += rhs.delta_leaves;
        self.mixed_leaves += rhs.mixed_leaves;
        self.serial_leaves += rhs.serial_leaves;
        self.chunks += rhs.chunks;
    }
}

/// A staged batch merge: pre-rebased runs for children `0..n` of one
/// batch, committed one child at a time in creation order.
///
/// `commit` must be called with the same parent the batch was staged
/// from, the same child data in the same order, and each index exactly
/// once, with no other mutation of the parent's mergeable state in
/// between — the runtime's `merge_all` upholds this by construction.
pub trait StagedCommit<D> {
    /// Merge child `index`'s staged run into `parent`, blocking only if
    /// that child's staging work has not finished yet. Equivalent to
    /// `parent.merge(child)` — same result, same stats.
    fn commit(&mut self, parent: &mut D, child: &D, index: usize)
        -> Result<MergeStats, MergeError>;

    /// The plan shape, for the `MergeStaged` telemetry event.
    fn profile(&self) -> StageProfile;
}

/// One pre-rebased run plus the stats measured while staging it.
struct StagedRun<O> {
    run: Vec<O>,
    pre: MergeStats,
    /// True when the lane reports compaction counters as raw lengths
    /// (the delta path's convention).
    raw_compacted: bool,
}

/// One slot of a [`StagedLeaf`]'s commit schedule.
enum Slot<O> {
    /// Not delivered yet.
    Pending,
    /// A staged run, ready to commit.
    Run(StagedRun<O>),
    /// The lane could not stage this member exactly (screen fire,
    /// span-inexpressible op): this child and every later one fall back
    /// to the plain sequential merge.
    Poison,
}

/// The leaf [`StagedCommit`] over a single [`Versioned`] log: collects
/// `(index, Option<run>)` pairs from the lane workers and commits them
/// in order, with `None` poisoning the batch suffix (see the module
/// docs).
struct StagedLeaf<O: Operation> {
    slots: Vec<Slot<O>>,
    rx: Receiver<(usize, Option<StagedRun<O>>)>,
    profile: StageProfile,
    timing: bool,
    poisoned: bool,
}

impl<O: Operation> StagedLeaf<O> {
    /// Block until slot `index` resolves; `None` means the lane marked
    /// it (and therefore the whole batch suffix) unstageable. Lanes
    /// poison the *first* unstaged index and then stop sending, so this
    /// never waits on an index past a poison marker.
    fn take(&mut self, index: usize) -> Option<StagedRun<O>> {
        loop {
            match std::mem::replace(&mut self.slots[index], Slot::Pending) {
                Slot::Run(staged) => return Some(staged),
                Slot::Poison => {
                    self.slots[index] = Slot::Poison;
                    return None;
                }
                Slot::Pending => {
                    let (i, staged) = self
                        .rx
                        .recv()
                        .expect("a merge-staging worker died before delivering its rebased run");
                    self.slots[i] = match staged {
                        Some(run) => Slot::Run(run),
                        None => Slot::Poison,
                    };
                }
            }
        }
    }
}

impl<O: Operation> StagedCommit<Versioned<O>> for StagedLeaf<O> {
    fn commit(
        &mut self,
        parent: &mut Versioned<O>,
        child: &Versioned<O>,
        index: usize,
    ) -> Result<MergeStats, MergeError> {
        if !self.poisoned {
            if let Some(staged) = self.take(index) {
                return parent.commit_staged(
                    child,
                    staged.run,
                    staged.pre,
                    staged.raw_compacted,
                    self.timing,
                );
            }
            self.poisoned = true;
        }
        // Poisoned suffix: the staged prefix left `parent` in exactly
        // the sequential state, so the plain kernel (grid fallback and
        // all) finishes the batch bit-identically.
        let mut stats = parent.merge(child)?;
        stats.screen_rejects = 1;
        Ok(stats)
    }

    fn profile(&self) -> StageProfile {
        self.profile
    }
}

/// A log-only stand-in for the parent's `Versioned` that can cross
/// threads (the state cannot, and rebasing never needs it): the committed
/// log, its absolute start, and the fuse barrier captured at staging
/// time. `extend` mirrors `Versioned`'s tail-fusion rules exactly, so the
/// committed slice each staged child rebases against is byte-identical
/// to what the sequential schedule would have seen.
struct LogReplica<O: Operation> {
    log: Vec<O>,
    log_start: usize,
    barrier: usize,
}

impl<O: Operation> LogReplica<O> {
    fn suffix(&self, fork_base: usize) -> &[O] {
        &self.log[fork_base - self.log_start..]
    }

    fn extend(&mut self, ops: &[O]) {
        for op in ops {
            if !self.log.is_empty() && self.log_start + self.log.len() > self.barrier {
                let last = self.log.last().expect("non-empty");
                if Operation::annihilates(last, op) {
                    self.log.pop();
                    continue;
                }
                if let Some(fused) = Operation::compose(last, op) {
                    *self.log.last_mut().expect("non-empty") = fused;
                    continue;
                }
            }
            self.log.push(op.clone());
        }
    }
}

/// Stage a batch on the **serial lane**: one worker replays the exact
/// sequential rebase pipeline — per child, rebase over the replica's
/// committed suffix from its fork base, then extend the replica with the
/// run under the same fusion rules. Returns `None` only when a child's
/// fork point does not lie inside the parent's retained history (the
/// sequential path is then the one that must surface the error).
pub fn stage_versioned<O: Operation>(
    parent: &Versioned<O>,
    children: &[&Versioned<O>],
    ctx: &StageCtx,
) -> Option<Box<dyn StagedCommit<Versioned<O>>>> {
    if children.is_empty() {
        return None;
    }
    let lo = parent.log_start();
    let hi = parent.history_len();
    if children
        .iter()
        .any(|c| c.fork_base() < lo || c.fork_base() > hi)
    {
        return None;
    }
    let mut replica = LogReplica {
        log: parent.log().to_vec(),
        log_start: lo,
        barrier: parent.barrier_value(),
    };
    let work: Vec<(usize, Vec<O>)> = children
        .iter()
        .map(|c| (c.fork_base(), c.log().to_vec()))
        .collect();
    let (tx, rx) = channel();
    let timing = ctx.timing;
    let seal_per_commit = ctx.seal_per_commit;
    (ctx.exec)(Box::new(move || {
        for (i, (fork_base, log)) in work.into_iter().enumerate() {
            let (run, pre) = rebase_over(&log, replica.suffix(fork_base), timing);
            replica.extend(&run);
            if seal_per_commit {
                // Mirror the sink's post-commit history seal: the next
                // child must not fuse into ops this commit made durable.
                replica.barrier = replica.log_start + replica.log.len();
            }
            let _ = tx.send((
                i,
                Some(StagedRun {
                    run,
                    pre,
                    raw_compacted: false,
                }),
            ));
        }
    }));
    Some(Box::new(StagedLeaf {
        slots: (0..children.len()).map(|_| Slot::Pending).collect(),
        rx,
        profile: StageProfile {
            serial_leaves: 1,
            chunks: 1,
            ..StageProfile::default()
        },
        timing,
        poisoned: false,
    }))
}

/// `committed ∘ T(next, committed)`: extend a committed composite delta
/// by one more sibling's delta, exactly the step the sequential fold
/// performs when it commits that sibling's rebased run.
fn combine<P: DeltaPayload>(committed: &Delta<P>, next: &Delta<P>) -> Delta<P> {
    let (_, rebased) = committed.transform(next);
    committed.compose(&rebased)
}

/// Saturating elapsed nanoseconds since `t0`.
fn elapsed_nanos(t0: Instant) -> u64 {
    t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
}

/// One chunk's pass-A report: its members' deltas plus their local
/// composite.
type ChunkFold<P> = (Vec<Delta<P>>, Delta<P>);

/// A sibling log handed to pass A: either the raw ops, or — for a log
/// big enough that one worker folding it alone would dominate the
/// critical path — a composite the staging thread already split/fused
/// across segment workers.
enum FoldItem<O: DeltaOp> {
    Log(Vec<O>),
    Folded(Delta<O::Payload>),
}

impl<O: DeltaOp> FoldItem<O> {
    fn fold(self, bias: GapBias) -> Option<Delta<O::Payload>> {
        match self {
            FoldItem::Folded(d) => Some(d),
            FoldItem::Log(log) => from_ops_biased(&log, bias),
        }
    }
}

/// Fold one log into a delta, splitting it across executor workers when
/// it is at least `ctx.split_min_ops` ops long: segment folds run
/// concurrently and the segment composites fuse in order, exact because
/// composition under a fixed bias is associative
/// ([`sm_ot::delta::from_ops_chunked`] is the sequential oracle).
///
/// Called from the staging thread only; the pool grows on demand, so
/// blocking here on segment results cannot starve the lane workers.
fn fold_log_split<O: DeltaOp>(
    ops: &[O],
    bias: GapBias,
    ctx: &StageCtx,
) -> Option<Delta<O::Payload>> {
    if ops.len() < ctx.split_min_ops || ctx.lanes <= 1 {
        return from_ops_biased(ops, bias);
    }
    let seg_len = ops
        .len()
        .div_ceil(ctx.lanes)
        .max(ctx.split_min_ops / 2)
        .max(1);
    let (tx, rx) = channel();
    let mut segs = 0usize;
    for (k, seg) in ops.chunks(seg_len).enumerate() {
        let seg = seg.to_vec();
        let tx = tx.clone();
        (ctx.exec)(Box::new(move || {
            let _ = tx.send((k, from_ops_biased(&seg, bias)));
        }));
        segs += 1;
    }
    drop(tx);
    let mut folds: Vec<Option<Delta<O::Payload>>> = (0..segs).map(|_| None).collect();
    for _ in 0..segs {
        let (k, d) = rx.recv().ok()?;
        folds[k] = d;
    }
    let mut acc = Delta::identity();
    for d in folds {
        acc = acc.compose_biased(&d?, bias);
    }
    Some(acc)
}

/// Stage a batch on the **delta lane** when the batch qualifies
/// (delta-foldable sequence logs by the push-time [`LogShape`] cache —
/// no rescans — one shared in-history fork base, non-empty committed
/// slice), falling back to the serial lane otherwise.
///
/// Two plans share this entry point:
///
/// **Insert-only** (every child's cache says [`LogShape::InsertOnly`]
/// and the committed slice is insert-only too): siblings split into
/// `ctx.lanes` chunks. Pass A folds each chunk's logs into deltas and
/// its local composite concurrently; a coordinator sequences the
/// chunk-start composites (`#chunks` combines) and fans out pass B,
/// where each chunk walks its members against a running committed
/// composite, emitting every member's rebased run. All reductions
/// re-associate `combine`, which for insert-only deltas is exact down
/// to the span representation.
///
/// **Mixed** (deletes anywhere in the batch): deletes forfeit the
/// re-association proof, so only pass A runs in parallel; a single
/// coordinator walks every member delta in index order performing
/// exactly the sequential kernel's delta steps — screen with
/// [`Delta::rebase_is_order_sensitive`], transform, compose. A screen
/// fire poisons the batch suffix (module docs) instead of bailing the
/// whole batch. Still a large win at fan-out: the committed composite
/// grows incrementally instead of being refolded from the whole
/// committed log per child.
pub fn stage_versioned_delta<O: DeltaOp>(
    parent: &Versioned<O>,
    children: &[&Versioned<O>],
    ctx: &StageCtx,
) -> Option<Box<dyn StagedCommit<Versioned<O>>>> {
    if children.is_empty() {
        return None;
    }
    let lo = parent.log_start();
    let hi = parent.history_len();
    let fork_base = children[0].fork_base();
    let qualified = fork_base >= lo
        && fork_base <= hi
        && children.iter().all(|c| {
            c.fork_base() == fork_base && !c.log().is_empty() && c.log_shape().delta_foldable()
        })
        && fork_base - lo < parent.log().len();
    if !qualified {
        return stage_versioned(parent, children, ctx);
    }
    let committed = &parent.log()[fork_base - lo..];
    // The committed *slice* of an insert-only log is insert-only; any
    // other cache state needs one O(slice) scan to decide (a slice of a
    // Mixed log can itself be insert-only, and Foreign must bail).
    let committed_shape = match parent.log_shape() {
        LogShape::InsertOnly => OpShape::Insert,
        _ => shape_of_log(committed),
    };
    if committed_shape == OpShape::Foreign {
        return stage_versioned(parent, children, ctx);
    }
    let insert_only_batch =
        committed_shape == OpShape::Insert && children.iter().all(|c| c.log_shape().insert_only());

    let Some(c0) = fold_log_split(committed, GapBias::Start, ctx) else {
        // Shape cache said foldable but a fold failed (conservative
        // seam for foreign algebras): the serial lane is always exact.
        return stage_versioned(parent, children, ctx);
    };
    let n = children.len();
    let lanes = ctx.lanes.clamp(1, n);
    let chunk_len = n.div_ceil(lanes);
    let timing = ctx.timing;

    // Pre-fold huge sibling logs on the staging thread (split/fuse), so
    // no single pass-A worker serializes a giant fold.
    let mut items: Vec<FoldItem<O>> = Vec::with_capacity(n);
    for c in children {
        if c.log().len() >= ctx.split_min_ops {
            match fold_log_split(c.log(), GapBias::End, ctx) {
                Some(d) => items.push(FoldItem::Folded(d)),
                None => return stage_versioned(parent, children, ctx),
            }
        } else {
            items.push(FoldItem::Log(c.log().to_vec()));
        }
    }
    let mut chunked: Vec<Vec<FoldItem<O>>> = Vec::with_capacity(lanes);
    let mut it = items.into_iter();
    loop {
        let chunk: Vec<FoldItem<O>> = it.by_ref().take(chunk_len).collect();
        if chunk.is_empty() {
            break;
        }
        chunked.push(chunk);
    }
    let chunks = chunked.len();
    let (slot_tx, slot_rx) = channel();

    if insert_only_batch {
        // Pass A (parallel per chunk): fold each sibling log into a
        // delta over the fork-base coordinates and reduce the chunk's
        // local composite.
        let (fold_tx, fold_rx) = channel();
        for (k, chunk) in chunked.into_iter().enumerate() {
            let fold_tx = fold_tx.clone();
            (ctx.exec)(Box::new(move || {
                let ds: Option<Vec<Delta<O::Payload>>> = chunk
                    .into_iter()
                    .map(|item| item.fold(GapBias::End))
                    .collect();
                let report: Option<ChunkFold<O::Payload>> = ds.map(|ds| {
                    let mut total: Option<Delta<O::Payload>> = None;
                    for d in &ds {
                        total = Some(match total {
                            None => d.clone(),
                            Some(t) => combine(&t, d),
                        });
                    }
                    let total = total.expect("chunks are non-empty");
                    (ds, total)
                });
                let _ = fold_tx.send((k, report));
            }));
        }
        drop(fold_tx);

        // Coordinator: sequence the chunk-start composites, fan out
        // pass B.
        let exec = Arc::clone(&ctx.exec);
        (ctx.exec)(Box::new(move || {
            let mut folds: Vec<Option<Option<ChunkFold<O::Payload>>>> =
                (0..chunks).map(|_| None).collect();
            for _ in 0..chunks {
                let Ok((k, report)) = fold_rx.recv() else {
                    break;
                };
                folds[k] = Some(report);
            }
            let mut base = c0;
            for (k, fold) in folds.into_iter().enumerate() {
                let start = k * chunk_len;
                let Some(Some((ds, total))) = fold else {
                    // A fold worker failed or died: poison from this
                    // chunk's first member on.
                    let _ = slot_tx.send((start, None));
                    return;
                };
                let next_base = combine(&base, &total);
                let slot_tx = slot_tx.clone();
                let chunk_base = base.clone();
                // Pass B (parallel per chunk): walk the chunk's members
                // against a running committed composite — identical to
                // the sequential fold's committed delta at each member,
                // by the insert-only normal form.
                exec(Box::new(move || {
                    let mut committed = chunk_base;
                    for (t, d) in ds.into_iter().enumerate() {
                        let t0 = timing.then(Instant::now);
                        let (_, rebased) = committed.transform(&d);
                        let pre = MergeStats {
                            delta_rebases: 1,
                            delta_spans: committed.span_count() + d.span_count(),
                            delta_nanos: t0.map_or(0, elapsed_nanos),
                            ..MergeStats::default()
                        };
                        committed = committed.compose(&rebased);
                        let _ = slot_tx.send((
                            start + t,
                            Some(StagedRun {
                                run: rebased.into_ops(),
                                pre,
                                raw_compacted: true,
                            }),
                        ));
                    }
                }));
                base = next_base;
            }
        }));
    } else {
        // Mixed plan. Pass A (parallel per chunk): fold only — no chunk
        // composites, since re-associating `combine` over deltas with
        // deletes is unproven.
        let (fold_tx, fold_rx) = channel();
        for (k, chunk) in chunked.into_iter().enumerate() {
            let fold_tx = fold_tx.clone();
            (ctx.exec)(Box::new(move || {
                let ds: Option<Vec<Delta<O::Payload>>> = chunk
                    .into_iter()
                    .map(|item| item.fold(GapBias::End))
                    .collect();
                let _ = fold_tx.send((k, ds));
            }));
        }
        drop(fold_tx);

        // Coordinator: the sequential kernel's delta walk, verbatim —
        // screen, transform, compose — against an incrementally grown
        // committed composite. One worker, index order.
        (ctx.exec)(Box::new(move || {
            // Outer Option: chunk not yet received; inner: fold failure.
            type ChunkFolds<P> = Option<Option<Vec<Delta<P>>>>;
            let mut folds: Vec<ChunkFolds<O::Payload>> = (0..chunks).map(|_| None).collect();
            for _ in 0..chunks {
                let Ok((k, ds)) = fold_rx.recv() else { break };
                folds[k] = Some(ds);
            }
            let mut base = c0;
            let mut index = 0usize;
            for fold in folds {
                let Some(Some(ds)) = fold else {
                    let _ = slot_tx.send((index, None));
                    return;
                };
                for d in ds {
                    if base.rebase_is_order_sensitive(&d) {
                        // The exact committed-vs-incoming screen the
                        // sequential kernel would run for this child:
                        // poison here, grid fallback at commit time.
                        let _ = slot_tx.send((index, None));
                        return;
                    }
                    let t0 = timing.then(Instant::now);
                    let (_, rebased) = base.transform(&d);
                    let pre = MergeStats {
                        delta_rebases: 1,
                        delta_spans: base.span_count() + d.span_count(),
                        delta_nanos: t0.map_or(0, elapsed_nanos),
                        ..MergeStats::default()
                    };
                    base = base.compose(&rebased);
                    let _ = slot_tx.send((
                        index,
                        Some(StagedRun {
                            run: rebased.into_ops(),
                            pre,
                            raw_compacted: true,
                        }),
                    ));
                    index += 1;
                }
            }
        }));
    }

    Some(Box::new(StagedLeaf {
        slots: (0..n).map(|_| Slot::Pending).collect(),
        rx: slot_rx,
        profile: StageProfile {
            delta_leaves: 1,
            mixed_leaves: usize::from(!insert_only_batch),
            serial_leaves: 0,
            chunks,
        },
        timing,
        poisoned: false,
    }))
}

/// Lift a leaf stage over a projection (façade `inner` field, tuple
/// element, struct field).
struct MappedStage<D, F> {
    get: Box<dyn for<'a> Fn(&'a D) -> &'a F>,
    get_mut: Box<dyn for<'a> Fn(&'a mut D) -> &'a mut F>,
    stage: Box<dyn StagedCommit<F>>,
}

impl<D, F> StagedCommit<D> for MappedStage<D, F> {
    fn commit(
        &mut self,
        parent: &mut D,
        child: &D,
        index: usize,
    ) -> Result<MergeStats, MergeError> {
        let c = (self.get)(child);
        self.stage.commit((self.get_mut)(parent), c, index)
    }

    fn profile(&self) -> StageProfile {
        self.stage.profile()
    }
}

/// A field with no staging seam of its own: committed by plain
/// sequential `merge` at commit time, inside the batch walk.
struct InlineStage<D, F: Mergeable> {
    get: Box<dyn for<'a> Fn(&'a D) -> &'a F>,
    get_mut: Box<dyn for<'a> Fn(&'a mut D) -> &'a mut F>,
}

impl<D, F: Mergeable> StagedCommit<D> for InlineStage<D, F> {
    fn commit(
        &mut self,
        parent: &mut D,
        child: &D,
        _index: usize,
    ) -> Result<MergeStats, MergeError> {
        let c = (self.get)(child);
        (self.get_mut)(parent).merge(c)
    }

    fn profile(&self) -> StageProfile {
        StageProfile {
            serial_leaves: 1,
            ..StageProfile::default()
        }
    }
}

/// Lift an optional leaf stage over a field projection: staged fields
/// commit their pre-rebased runs, seamless fields merge inline. Used by
/// the tuple and [`mergeable_struct!`](crate::mergeable_struct) derives.
pub fn project_stage<D, F, G, H>(
    get: G,
    get_mut: H,
    stage: Option<Box<dyn StagedCommit<F>>>,
) -> Box<dyn StagedCommit<D>>
where
    D: 'static,
    F: Mergeable,
    G: for<'a> Fn(&'a D) -> &'a F + 'static,
    H: for<'a> Fn(&'a mut D) -> &'a mut F + 'static,
{
    match stage {
        Some(stage) => Box::new(MappedStage {
            get: Box::new(get),
            get_mut: Box::new(get_mut),
            stage,
        }),
        None => Box::new(InlineStage {
            get: Box::new(get),
            get_mut: Box::new(get_mut),
        }),
    }
}

/// [`project_stage`] for a required stage with no `Mergeable` bound on
/// the projected field — the façade-to-[`Versioned`] hop.
pub fn map_stage<D, F, G, H>(
    get: G,
    get_mut: H,
    stage: Box<dyn StagedCommit<F>>,
) -> Box<dyn StagedCommit<D>>
where
    D: 'static,
    F: 'static,
    G: for<'a> Fn(&'a D) -> &'a F + 'static,
    H: for<'a> Fn(&'a mut D) -> &'a mut F + 'static,
{
    Box::new(MappedStage {
        get: Box::new(get),
        get_mut: Box::new(get_mut),
        stage,
    })
}

/// Field-wise composite of per-field stages: commits every field of one
/// child (in declaration order, summing stats) before moving on, exactly
/// like the sequential field-wise merge.
pub struct FieldStage<D> {
    fields: Vec<Box<dyn StagedCommit<D>>>,
}

impl<D> FieldStage<D> {
    /// Compose per-field stages in field declaration order.
    pub fn new(fields: Vec<Box<dyn StagedCommit<D>>>) -> Self {
        FieldStage { fields }
    }
}

impl<D> StagedCommit<D> for FieldStage<D> {
    fn commit(
        &mut self,
        parent: &mut D,
        child: &D,
        index: usize,
    ) -> Result<MergeStats, MergeError> {
        let mut stats = MergeStats::default();
        for field in &mut self.fields {
            stats += field.commit(parent, child, index)?;
        }
        Ok(stats)
    }

    fn profile(&self) -> StageProfile {
        let mut p = StageProfile::default();
        for field in &self.fields {
            p += field.profile();
        }
        p
    }
}

/// Per-element stage for `Vec<M>` composites.
pub(crate) struct IndexStage<M: Mergeable> {
    pub(crate) idx: usize,
    pub(crate) stage: Option<Box<dyn StagedCommit<M>>>,
}

impl<M: Mergeable> StagedCommit<Vec<M>> for IndexStage<M> {
    fn commit(
        &mut self,
        parent: &mut Vec<M>,
        child: &Vec<M>,
        index: usize,
    ) -> Result<MergeStats, MergeError> {
        let c = &child[self.idx];
        let p = &mut parent[self.idx];
        match &mut self.stage {
            Some(stage) => stage.commit(p, c, index),
            None => p.merge(c),
        }
    }

    fn profile(&self) -> StageProfile {
        match &self.stage {
            Some(stage) => stage.profile(),
            None => StageProfile {
                serial_leaves: 1,
                ..StageProfile::default()
            },
        }
    }
}

/// Receiver for one composite field being merged on its own worker.
pub type FieldMergeJob<M> = Receiver<Result<(M, MergeStats), MergeError>>;

/// Ship one composite field's merge to the executor when the child side
/// is large enough (`ctx.field_min_ops`) to pay for the clone; `None`
/// means merge it inline. The worker merges *clones* of both sides —
/// deterministically the same result and stats as merging in place —
/// and sends the merged field back wholesale.
pub fn spawn_field_merge<M: Mergeable>(
    parent: &M,
    child: &M,
    ctx: &StageCtx,
) -> Option<FieldMergeJob<M>> {
    if child.pending_ops() < ctx.field_min_ops {
        return None;
    }
    let (tx, rx) = channel();
    let mut mine = parent.clone();
    let theirs = child.clone();
    (ctx.exec)(Box::new(move || {
        let result = match mine.merge(&theirs) {
            Ok(stats) => Ok((mine, stats)),
            Err(e) => Err(e),
        };
        let _ = tx.send(result);
    }));
    Some(rx)
}

/// Collect one field's off-thread merge, installing the merged field in
/// place. Field-order error semantics match the sequential fold: fields
/// before a failure are committed, fields after it are untouched.
pub fn recv_field_merge<M: Mergeable>(
    parent: &mut M,
    rx: FieldMergeJob<M>,
) -> Result<MergeStats, MergeError> {
    let (merged, stats) = rx
        .recv()
        .expect("a field-merge worker died before reporting")?;
    *parent = merged;
    Ok(stats)
}

/// The stage for `()`: nothing to rebase, nothing to commit.
pub(crate) struct NoopStage;

impl StagedCommit<()> for NoopStage {
    fn commit(
        &mut self,
        _parent: &mut (),
        _child: &(),
        _index: usize,
    ) -> Result<MergeStats, MergeError> {
        Ok(MergeStats::default())
    }

    fn profile(&self) -> StageProfile {
        StageProfile::default()
    }
}
