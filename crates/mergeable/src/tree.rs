//! [`MTree`] — a mergeable ordered tree ("mergeable … trees", §II-C),
//! addressing nodes by child-index paths.

use sm_ot::tree::{Node, Path, TreeOp, Value};

use crate::versioned::{CopyMode, MergeError, MergeStats, Versioned};
use crate::Mergeable;

/// A mergeable rooted ordered tree of `V` values.
///
/// The root always exists and carries a value; subtrees are inserted and
/// deleted at child-index [`Path`]s. Concurrent sibling insertions shift
/// deterministically; operations inside a concurrently deleted subtree are
/// absorbed by the deletion.
#[derive(Debug, Clone)]
pub struct MTree<V: Value> {
    inner: Versioned<TreeOp<V>>,
}

impl<V: Value> MTree<V> {
    /// A tree consisting of a root with `root_value` and no children.
    pub fn new(root_value: V) -> Self {
        MTree {
            inner: Versioned::new(Node::leaf(root_value)),
        }
    }

    /// Wrap an existing tree as the base state.
    pub fn from_root(root: Node<V>) -> Self {
        MTree {
            inner: Versioned::new(root),
        }
    }

    /// A tree with an explicit fork [`CopyMode`].
    pub fn with_mode(root_value: V, mode: CopyMode) -> Self {
        MTree {
            inner: Versioned::with_mode(Node::leaf(root_value), mode),
        }
    }

    /// Borrow the root node.
    pub fn root(&self) -> &Node<V> {
        self.inner.state()
    }

    /// Borrow the node at `path`, if it exists.
    pub fn node_at(&self, path: &[usize]) -> Option<&Node<V>> {
        self.root().node_at(path)
    }

    /// Total number of nodes.
    pub fn size(&self) -> usize {
        self.root().size()
    }

    /// Insert `node` so it becomes the child at `path[last]` of the node at
    /// `path[..last]`.
    ///
    /// # Panics
    /// Panics if the parent path does not exist or the slot is out of range.
    pub fn insert_node(&mut self, path: Path, node: Node<V>) {
        let (slot, parent_path) = path.split_last().expect("cannot insert at the root path");
        let parent = self.node_at(parent_path).expect("parent path must exist");
        assert!(*slot <= parent.children.len(), "insert slot out of range");
        self.inner.record_validated(TreeOp::Insert {
            path: path.clone(),
            node,
        });
    }

    /// Append `node` as the last child of the node at `parent_path`.
    pub fn push_child(&mut self, parent_path: &[usize], node: Node<V>) {
        let parent = self.node_at(parent_path).expect("parent path must exist");
        let mut path = parent_path.to_vec();
        path.push(parent.children.len());
        self.inner.record_validated(TreeOp::Insert { path, node });
    }

    /// Delete the subtree at `path`, returning it.
    ///
    /// # Panics
    /// Panics if the path does not address an existing non-root node.
    pub fn delete_node(&mut self, path: Path) -> Node<V> {
        assert!(!path.is_empty(), "cannot delete the root");
        let node = self.node_at(&path).expect("path must exist").clone();
        self.inner.record_validated(TreeOp::Delete { path });
        node
    }

    /// Overwrite the value at `path` (empty path = root).
    ///
    /// # Panics
    /// Panics if the path does not exist.
    pub fn set_value(&mut self, path: Path, value: V) {
        assert!(self.node_at(&path).is_some(), "path must exist");
        self.inner
            .record_validated(TreeOp::SetValue { path, value });
    }

    /// The recorded local operations (diagnostics / tests).
    pub fn log(&self) -> &[TreeOp<V>] {
        self.inner.log()
    }

    // Engine-room view of the log bookkeeping for the in-crate
    // persistence layer (`crate::persist`).
    pub(crate) fn versioned(&self) -> &Versioned<TreeOp<V>> {
        &self.inner
    }

    /// Apply and record an operation produced elsewhere (replication /
    /// distributed runtimes).
    pub fn apply_op(&mut self, op: TreeOp<V>) -> Result<(), sm_ot::ApplyError> {
        self.inner.record(op)
    }
}

impl<V: Value> PartialEq for MTree<V> {
    fn eq(&self, other: &Self) -> bool {
        self.root() == other.root()
    }
}

impl<V: Value> Mergeable for MTree<V> {
    stage_versioned_inner!(stage_versioned);

    fn fork(&self) -> Self {
        MTree {
            inner: self.inner.fork(),
        }
    }

    fn merge(&mut self, child: &Self) -> Result<MergeStats, MergeError> {
        self.inner.merge(&child.inner)
    }

    fn pending_ops(&self) -> usize {
        self.inner.pending_ops()
    }

    fn history_marks(&self, out: &mut Vec<usize>) {
        out.push(self.inner.history_len());
    }

    fn fork_marks(&self, out: &mut Vec<usize>) {
        out.push(self.inner.fork_base());
    }

    fn truncate_history(&mut self, watermark: &[usize], cursor: &mut usize) -> usize {
        let w = watermark.get(*cursor).copied().unwrap_or(0);
        *cursor += 1;
        self.inner.truncate_prefix(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MTree<&'static str> {
        let mut t = MTree::new("root");
        t.push_child(&[], Node::leaf("a"));
        t.push_child(&[], Node::leaf("b"));
        t.push_child(&[0], Node::leaf("a0"));
        t
    }

    #[test]
    fn construction_and_access() {
        let t = sample();
        assert_eq!(t.size(), 4);
        assert_eq!(t.node_at(&[0]).unwrap().value, "a");
        assert_eq!(t.node_at(&[0, 0]).unwrap().value, "a0");
        assert_eq!(t.node_at(&[1]).unwrap().value, "b");
        assert!(t.node_at(&[2]).is_none());
    }

    #[test]
    fn delete_returns_subtree() {
        let mut t = sample();
        let sub = t.delete_node(vec![0]);
        assert_eq!(sub.value, "a");
        assert_eq!(sub.children.len(), 1);
        assert_eq!(t.size(), 2);
    }

    #[test]
    fn concurrent_sibling_inserts_merge() {
        let t0 = sample();
        let mut parent = t0.clone();
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        c1.push_child(&[], Node::leaf("from-c1"));
        c2.push_child(&[], Node::leaf("from-c2"));
        parent.merge(&c1).unwrap();
        parent.merge(&c2).unwrap();
        assert_eq!(parent.node_at(&[2]).unwrap().value, "from-c1");
        assert_eq!(parent.node_at(&[3]).unwrap().value, "from-c2");
    }

    #[test]
    fn edit_inside_concurrently_deleted_subtree_is_absorbed() {
        let mut parent = sample();
        let mut editor = parent.fork();
        let mut deleter = parent.fork();
        editor.set_value(vec![0, 0], "edited");
        deleter.delete_node(vec![0]);
        parent.merge(&deleter).unwrap();
        parent.merge(&editor).unwrap();
        assert!(parent.node_at(&[0, 0]).is_none());
        assert_eq!(parent.node_at(&[0]).unwrap().value, "b");
    }

    #[test]
    fn deep_concurrent_edits_merge() {
        let mut parent = sample();
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        c1.push_child(&[0], Node::branch("x", vec![Node::leaf("x0")]));
        c2.set_value(vec![1], "B!");
        parent.set_value(vec![], "ROOT");
        parent.merge(&c1).unwrap();
        parent.merge(&c2).unwrap();
        assert_eq!(parent.root().value, "ROOT");
        assert_eq!(parent.node_at(&[0, 1]).unwrap().value, "x");
        assert_eq!(parent.node_at(&[0, 1, 0]).unwrap().value, "x0");
        assert_eq!(parent.node_at(&[1]).unwrap().value, "B!");
    }

    #[test]
    #[should_panic(expected = "cannot delete the root")]
    fn deleting_root_panics() {
        sample().delete_node(vec![]);
    }

    #[test]
    #[should_panic(expected = "parent path must exist")]
    fn inserting_under_missing_parent_panics() {
        sample().push_child(&[9], Node::leaf("x"));
    }
}
