//! [`Persist`]: mergeable structures whose state and operation logs can
//! be serialized — the codec layer shared by the distributed runtime
//! (sm-dist ships states out and logs back) and the durable store
//! (sm-store journals committed logs and snapshots states).
//!
//! Three views of the same structure cross the serialization boundary:
//!
//! - **state snapshot** ([`Persist::encode_state`] /
//!   [`Persist::decode_state`]) — the observable value, no log, no fork
//!   metadata;
//! - **whole log** ([`Persist::encode_log`] / [`Persist::apply_log`]) —
//!   every locally recorded operation, span-compacted on the way out;
//! - **committed slice** ([`Persist::encode_committed_since`]) — the
//!   operations appended to the log between two history marks (as
//!   reported by [`Mergeable::history_marks`]), which is exactly what a
//!   merge-commit journal appends per commit. The slice is encoded in the
//!   same wire shape as a whole log, so [`Persist::apply_log`] replays
//!   journaled slices through the normal OT apply path.
//!
//! Journaling is only sound if persisted operations are immutable, but
//! [`Versioned`](crate::Versioned) opportunistically fuses new records
//! into its log *tail* in place. [`Persist::seal_history`] closes that
//! hole: it raises the fuse barrier over every contained log, after
//! which the current history prefix can never be rewritten. A journal
//! seals before it reads.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use sm_codec::{Decode, DecodeError, Encode};
use sm_ot::list::{Element, ListOp};
use sm_ot::state::{ChunkTree, DeltaPart, Rope};
use sm_ot::tree::Node;
use sm_ot::Operation;

use crate::{
    MCounter, MCounterMap, MList, MMap, MQueue, MRegister, MSet, MText, MTree, Mergeable, Versioned,
};

use std::any::Any;
use std::fmt;

/// Error replaying a serialized operation log onto a structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayError {
    /// The bytes do not decode as operations of the expected algebra.
    Decode(DecodeError),
    /// A decoded operation failed to apply to the current state.
    Apply(String),
    /// Composite structures disagree in shape (e.g. `Vec<M>` length
    /// drift between encoder and decoder).
    Shape(String),
    /// Replay applied a different number of operations than the journal
    /// frame declared, or left trailing bytes: frame/payload drift.
    Count {
        /// Operations actually applied.
        applied: usize,
        /// Operation count the frame declared.
        expected: u64,
        /// Undecoded bytes left after the last operation.
        trailing: usize,
    },
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::Decode(e) => write!(f, "log decode failed: {e}"),
            ReplayError::Apply(e) => write!(f, "replayed operation failed to apply: {e}"),
            ReplayError::Shape(e) => write!(f, "shape mismatch: {e}"),
            // Phrased so a journal prefixing "commit {seq} " reproduces
            // its sequential corruption report verbatim.
            ReplayError::Count {
                applied,
                expected,
                trailing,
            } => write!(
                f,
                "replayed {applied} of {expected} ops with {trailing} trailing bytes"
            ),
        }
    }
}

impl std::error::Error for ReplayError {}

impl From<DecodeError> for ReplayError {
    fn from(e: DecodeError) -> Self {
        ReplayError::Decode(e)
    }
}

/// Error from [`Persist::replay_prepared`]: which slice of the submitted
/// batch failed and why, so callers can map the index back to a journal
/// sequence number.
#[derive(Debug)]
pub struct PreparedReplayError {
    /// Position of the failing slice in the submitted batch.
    pub index: usize,
    /// The underlying replay failure.
    pub error: ReplayError,
}

/// A committed log slice pre-decoded off the hot path, ready to replay
/// onto `D`.
///
/// Parallel recovery (sm-store) decodes and verifies journal segments on
/// worker threads, producing one `PreparedLog` per commit; a single
/// coordinator then replays them strictly in sequence order via
/// [`Persist::replay_prepared`]. The default pipeline wraps the raw
/// bytes ([`RawPreparedLog`]) and defers to [`Persist::apply_log`], so
/// prepared replay is effect-identical to sequential replay; structures
/// may override [`Persist::decode_log_prepared`] with a representation
/// that replays faster (e.g. list insert batches).
pub trait PreparedLog<D>: Send {
    /// Apply this prepared slice to `data` with the effect of
    /// [`Persist::apply_log`] followed by [`Persist::seal_history`].
    /// Returns the number of operations applied.
    fn replay(self: Box<Self>, data: &mut D) -> Result<usize, ReplayError>;

    /// Non-consuming downcast probe: batched replay paths peek at the
    /// concrete type before deciding how to consume the item.
    fn as_any(&self) -> &dyn Any;

    /// Consume into `Any` once [`PreparedLog::as_any`] confirmed the
    /// concrete type (a failed consuming downcast cannot restore the
    /// trait object).
    fn into_any(self: Box<Self>) -> Box<dyn Any + Send>;
}

/// The default [`PreparedLog`]: undecoded log bytes plus the journal
/// frame's declared operation count, replayed through
/// [`Persist::apply_log`].
pub struct RawPreparedLog {
    /// The encoded log slice (wire-compatible with [`Persist::apply_log`]).
    pub buf: Bytes,
    /// Operation count the journal frame declared for this slice.
    pub expected_ops: u64,
}

impl<D: Persist + 'static> PreparedLog<D> for RawPreparedLog {
    fn replay(self: Box<Self>, data: &mut D) -> Result<usize, ReplayError> {
        let expected = self.expected_ops;
        let mut buf = self.buf;
        let applied = data.apply_log(&mut buf)?;
        if applied as u64 != expected || buf.has_remaining() {
            return Err(ReplayError::Count {
                applied,
                expected,
                trailing: buf.remaining(),
            });
        }
        data.seal_history();
        Ok(applied)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any + Send> {
        self
    }
}

/// A mergeable structure whose state and operation log can be serialized.
pub trait Persist: Mergeable {
    /// Encode a snapshot of the current state (no log, no fork metadata).
    fn encode_state(&self, buf: &mut BytesMut);

    /// Decode a snapshot into a fresh instance with an empty log.
    fn decode_state(buf: &mut Bytes) -> Result<Self, DecodeError>;

    /// Encode the locally recorded operation log.
    fn encode_log(&self, buf: &mut BytesMut);

    /// Decode an operation log and apply + record it here. Returns the
    /// number of operations applied.
    fn apply_log(&mut self, buf: &mut Bytes) -> Result<usize, ReplayError>;

    /// Raise the fuse barrier of every contained log to its current
    /// history length, making the present history prefix append-only
    /// (later records can no longer fuse into it). Called by journals
    /// immediately before reading log contents they intend to persist.
    fn seal_history(&self);

    /// Encode, per contained log (in [`Mergeable::history_marks`]
    /// traversal order, consuming one entry of `marks` per log via
    /// `cursor`), the operations from absolute history position
    /// `marks[i]` to the present — the slice committed since the marks
    /// were captured. Each slice is span-compacted and wire-compatible
    /// with [`Persist::apply_log`]. Returns the total operation count
    /// encoded.
    ///
    /// Callers must have [sealed](Persist::seal_history) the history at
    /// the time `marks` was captured and must not have truncated past
    /// any mark; both are guaranteed by the journaling protocol (seal +
    /// capture at every commit, GC watermark ≤ last commit).
    fn encode_committed_since(
        &self,
        marks: &[usize],
        cursor: &mut usize,
        buf: &mut BytesMut,
    ) -> usize;

    /// Decode one committed log slice into a [`PreparedLog`] without
    /// touching any state, so decode work can run off the replay thread
    /// (parallel recovery workers). `expected_ops` is the operation
    /// count the journal frame declared; implementations that cannot
    /// confirm it defer the check to replay. The default keeps the raw
    /// bytes and replays through [`Persist::apply_log`].
    fn decode_log_prepared(buf: Bytes, expected_ops: u64) -> Box<dyn PreparedLog<Self>>
    where
        Self: Sized + 'static,
    {
        Box::new(RawPreparedLog { buf, expected_ops })
    }

    /// Replay a batch of prepared slices in order — equivalent to
    /// replaying each via [`PreparedLog::replay`]. Structures override
    /// this to amortize work across consecutive slices (e.g. the list
    /// replay session). On failure reports the batch index of the
    /// failing slice so callers can attribute it to a journal sequence.
    fn replay_prepared(
        &mut self,
        items: Vec<Box<dyn PreparedLog<Self>>>,
    ) -> Result<usize, PreparedReplayError>
    where
        Self: Sized,
    {
        let mut total = 0;
        for (index, item) in items.into_iter().enumerate() {
            total += item
                .replay(self)
                .map_err(|error| PreparedReplayError { index, error })?;
        }
        Ok(total)
    }

    /// Encode the difference between the current state and `base` (an
    /// earlier snapshot of the same structure lineage), decodable by
    /// [`Persist::decode_state_delta`] against the same base. The
    /// default carries a full snapshot — always correct; chunk-backed
    /// structures override with a shared-run encoding whose size tracks
    /// the diverged content instead of the whole state.
    fn encode_state_delta(&self, base: &Self, buf: &mut BytesMut) {
        let _ = base;
        buf.put_u8(DELTA_TAG_FULL);
        self.encode_state(buf);
    }

    /// Decode [`Persist::encode_state_delta`] output against `base`.
    fn decode_state_delta(base: &Self, buf: &mut Bytes) -> Result<Self, DecodeError>
    where
        Self: Sized,
    {
        let _ = base;
        match read_u8(buf)? {
            DELTA_TAG_FULL => Self::decode_state(buf),
            t => Err(DecodeError::BadTag(t)),
        }
    }
}

/// [`Persist::encode_state_delta`] leading tag: a full state snapshot
/// follows (the always-correct fallback).
const DELTA_TAG_FULL: u8 = 0;
/// A chunk shared-run delta follows ([`encode_delta_parts`]).
const DELTA_TAG_CHUNKS: u8 = 1;
/// A composite: one tagged delta per component follows.
const DELTA_TAG_COMPOSITE: u8 = 2;

/// [`DeltaPart`] run kinds on the wire.
const DELTA_PART_SHARED: u8 = 0;
const DELTA_PART_LITERAL: u8 = 1;

fn read_u8(buf: &mut Bytes) -> Result<u8, DecodeError> {
    if !buf.has_remaining() {
        return Err(DecodeError::UnexpectedEnd);
    }
    Ok(buf.get_u8())
}

/// Wire form of a chunk shared-run delta: varint part count, then per
/// part either `SHARED` + varint base start + varint run length, or
/// `LITERAL` + the encoded chunk content.
fn encode_delta_parts<C: Encode>(parts: &[DeltaPart<C>], buf: &mut BytesMut) {
    sm_codec::put_varint(buf, parts.len() as u64);
    for part in parts {
        match part {
            DeltaPart::Shared { start, count } => {
                buf.put_u8(DELTA_PART_SHARED);
                sm_codec::put_varint(buf, *start as u64);
                sm_codec::put_varint(buf, *count as u64);
            }
            DeltaPart::Literal(c) => {
                buf.put_u8(DELTA_PART_LITERAL);
                c.encode(buf);
            }
        }
    }
}

fn decode_delta_parts<C: Decode>(buf: &mut Bytes) -> Result<Vec<DeltaPart<C>>, DecodeError> {
    let n = sm_codec::get_varint(buf)?;
    if n > buf.remaining() as u64 {
        return Err(DecodeError::BadLength(n));
    }
    let mut parts = Vec::with_capacity(n as usize);
    for _ in 0..n {
        match read_u8(buf)? {
            DELTA_PART_SHARED => parts.push(DeltaPart::Shared {
                start: usize::decode(buf)?,
                count: usize::decode(buf)?,
            }),
            DELTA_PART_LITERAL => parts.push(DeltaPart::Literal(C::decode(buf)?)),
            t => return Err(DecodeError::BadTag(t)),
        }
    }
    Ok(parts)
}

/// Encode a log with span compaction applied first: runs of fusible
/// operations (contiguous inserts, same-key puts, counter adds…) are
/// serialized as single span ops. Compaction is rebase- and
/// apply-preserving, so replay is byte-identical in effect to shipping
/// the raw log — only the encoded size shrinks.
fn encode_compact_log<O>(log: &[O], buf: &mut BytesMut)
where
    O: Operation + Encode,
{
    let ops = sm_ot::compose::compact_cow(log);
    sm_codec::put_varint(buf, ops.len() as u64);
    for op in ops.iter() {
        op.encode(buf);
    }
}

/// [`encode_compact_log`] over the slice of `v`'s log at absolute
/// positions `marks[*cursor]..`, for [`Persist::encode_committed_since`].
fn encode_committed_log<O>(
    v: &Versioned<O>,
    marks: &[usize],
    cursor: &mut usize,
    buf: &mut BytesMut,
) -> usize
where
    O: Operation + Encode,
{
    let from = marks.get(*cursor).copied().unwrap_or(0);
    *cursor += 1;
    let start = from.saturating_sub(v.log_start()).min(v.log().len());
    let ops = sm_ot::compose::compact_cow(&v.log()[start..]);
    sm_codec::put_varint(buf, ops.len() as u64);
    for op in ops.iter() {
        op.encode(buf);
    }
    ops.len()
}

macro_rules! persist_log_methods {
    ($op_ty:ty) => {
        fn encode_log(&self, buf: &mut BytesMut) {
            encode_compact_log(self.log(), buf);
        }

        fn apply_log(&mut self, buf: &mut Bytes) -> Result<usize, ReplayError> {
            let ops: Vec<$op_ty> = Vec::decode(buf)?;
            let n = ops.len();
            for op in ops {
                self.apply_op(op)
                    .map_err(|e| ReplayError::Apply(e.to_string()))?;
            }
            Ok(n)
        }

        fn seal_history(&self) {
            self.versioned().seal();
        }

        fn encode_committed_since(
            &self,
            marks: &[usize],
            cursor: &mut usize,
            buf: &mut BytesMut,
        ) -> usize {
            encode_committed_log(self.versioned(), marks, cursor, buf)
        }
    };
}

/// Pre-decoded insert-only list commit: `(position, value start, run
/// length)` spans in op order over a flat value buffer — the input shape
/// of [`sm_ot::list::plan_insert_batch`], consumed by
/// [`ListReplaySession`].
pub struct ListPreparedLog<T: Element> {
    spans: Vec<(usize, usize, usize)>,
    /// Per-span: encoded as `InsertRun` (true) or `Insert` (false), so
    /// the sequential fallback reconstructs the exact operation (and its
    /// exact apply-error text).
    runs: Vec<bool>,
    values: Vec<T>,
    min_pos: usize,
}

/// Fused single-pass decoder for the list fast lane: accepts a committed
/// slice made solely of `Insert`/`InsertRun` ops. Returns `None` — raw
/// fallback, preserving sequential error semantics byte-for-byte — on a
/// declared-count mismatch, non-insert tags, empty runs (which the
/// sequential path bounds-checks before discovering they are no-ops),
/// trailing bytes, or any decode failure.
fn decode_insert_only<T>(buf: &Bytes, expected_ops: u64) -> Option<ListPreparedLog<T>>
where
    T: Element + Decode,
{
    let mut buf = buf.clone();
    let count = sm_codec::get_varint(&mut buf).ok()?;
    if count != expected_ops || count > buf.remaining() as u64 {
        return None;
    }
    let mut spans = Vec::with_capacity(count as usize);
    let mut runs = Vec::with_capacity(count as usize);
    let mut values: Vec<T> = Vec::with_capacity(count as usize);
    let mut min_pos = usize::MAX;
    for _ in 0..count {
        if !buf.has_remaining() {
            return None;
        }
        match buf.get_u8() {
            // Tags from the `ListOp` wire format (sm-codec).
            0 => {
                let at = usize::decode(&mut buf).ok()?;
                spans.push((at, values.len(), 1));
                runs.push(false);
                values.push(T::decode(&mut buf).ok()?);
                min_pos = min_pos.min(at);
            }
            3 => {
                let at = usize::decode(&mut buf).ok()?;
                let vs: Vec<T> = Vec::decode(&mut buf).ok()?;
                if vs.is_empty() {
                    return None;
                }
                spans.push((at, values.len(), vs.len()));
                runs.push(true);
                values.extend(vs);
                min_pos = min_pos.min(at);
            }
            _ => return None,
        }
    }
    if buf.has_remaining() {
        return None;
    }
    Some(ListPreparedLog {
        spans,
        runs,
        values,
        min_pos,
    })
}

/// Replays consecutive [`ListPreparedLog`] commits over a split
/// representation: an untouched chunk-tree prefix plus a plain `Vec`
/// tail covering everything the batches touch. Trailing-window
/// workloads (appends, queue churn) then amortize — each commit is one
/// slot plan + window rewrite on the tail, with no tree rebuild until
/// [`ListReplaySession::into_tree`].
struct ListReplaySession<T: Element> {
    /// Untouched prefix; the document is `tree ++ tail`.
    tree: ChunkTree<T>,
    tail: Vec<T>,
    /// Reused slot-plan state (free-slot index + mark buffer).
    planner: sm_ot::list::InsertPlanner,
    /// Reused copy of the pre-batch window, freeing `tail` to receive
    /// the assembled result in place.
    scratch: Vec<T>,
}

impl<T: Element> ListReplaySession<T> {
    fn new(tree: ChunkTree<T>) -> Self {
        ListReplaySession {
            tree,
            tail: Vec::new(),
            planner: sm_ot::list::InsertPlanner::new(),
            scratch: Vec::new(),
        }
    }

    /// Apply one prepared commit; returns its op count. Falls back to
    /// exact sequential application whenever the batch lane's
    /// preconditions don't hold, so results *and errors* match
    /// op-by-op replay.
    fn apply(&mut self, item: ListPreparedLog<T>) -> Result<usize, ReplayError> {
        let ops = item.spans.len();
        if ops == 0 {
            return Ok(0);
        }
        let doc_len = self.tree.len() + self.tail.len();
        let k = item.values.len();
        let s = item.min_pos;
        if s > doc_len {
            // The earliest insert is already out of bounds; sequential
            // application owns the per-op error report.
            return self.apply_sequential(item).map(|()| ops);
        }
        let window = doc_len - s;
        let m = window + k;
        if m >= u32::MAX as usize || window > 16 * k + 4096 {
            return self.apply_sequential(item).map(|()| ops);
        }
        // Validate that every op lands in bounds at its time (mirrors
        // `apply_batch` step 2); any failure is sequential's to report.
        let mut cur = doc_len;
        for (pos, _, len) in &item.spans {
            if *pos > cur {
                return self.apply_sequential(item).map(|()| ops);
            }
            cur += len;
        }
        // Make the window tail-resident, then rewrite it in place.
        if s < self.tree.len() {
            let t = self.tree.len();
            let mut suffix = self.tree.range_to_vec(s, t - s);
            self.tree.remove_range(s, t - s);
            suffix.append(&mut self.tail);
            self.tail = suffix;
        }
        let off = s - self.tree.len();
        let mut spans = item.spans;
        for span in &mut spans {
            span.0 -= s;
        }
        // Save the pre-batch window, then grow `tail` to the post-batch
        // length and let the fused plan+assemble overwrite every slot of
        // the window region in place.
        self.scratch.clear();
        self.scratch.extend_from_slice(&self.tail[off..]);
        self.tail.resize(off + m, item.values[0].clone());
        self.planner
            .plan_assemble(&spans, &self.scratch, &item.values, &mut self.tail[off..]);
        Ok(ops)
    }

    fn apply_sequential(&mut self, item: ListPreparedLog<T>) -> Result<(), ReplayError> {
        self.flush();
        let mut vals = item.values.into_iter();
        for ((pos, _, len), is_run) in item.spans.into_iter().zip(item.runs) {
            let op: ListOp<T> = if is_run {
                ListOp::InsertRun(pos, vals.by_ref().take(len).collect())
            } else {
                ListOp::Insert(pos, vals.next().expect("span covers one value"))
            };
            op.apply(&mut self.tree)
                .map_err(|e| ReplayError::Apply(e.to_string()))?;
        }
        Ok(())
    }

    /// Fold the tail back into the tree.
    fn flush(&mut self) {
        if !self.tail.is_empty() {
            let tail = std::mem::take(&mut self.tail);
            if self.tree.is_empty() {
                // Replay-from-empty leaves the whole document in the
                // tail; bulk chunking beats a root splice.
                self.tree = ChunkTree::from_vec(tail);
            } else {
                let at = self.tree.len();
                self.tree.splice_vec(at, 0, tail);
            }
        }
    }

    fn into_tree(mut self) -> ChunkTree<T> {
        self.flush();
        self.tree
    }
}

macro_rules! impl_list_prepared_log {
    ($target:ident) => {
        impl<T> PreparedLog<$target<T>> for ListPreparedLog<T>
        where
            T: Element + Encode + Decode,
        {
            fn replay(self: Box<Self>, data: &mut $target<T>) -> Result<usize, ReplayError> {
                let mut session = ListReplaySession::new(data.chunk_tree().clone());
                let n = session.apply(*self)?;
                data.versioned_mut().set_state(session.into_tree());
                data.seal_history();
                Ok(n)
            }

            fn as_any(&self) -> &dyn Any {
                self
            }

            fn into_any(self: Box<Self>) -> Box<dyn Any + Send> {
                self
            }
        }
    };
}
impl_list_prepared_log!(MList);
impl_list_prepared_log!(MQueue);

/// Prepared-replay overrides for the list-shaped structures: decode
/// fans insert-only slices into [`ListPreparedLog`]s, and batched replay
/// threads one [`ListReplaySession`] through consecutive slices.
/// `$elem` is the impl's element type parameter (passed in explicitly:
/// macro bodies cannot name the caller's generics hygienically).
macro_rules! persist_list_prepared_methods {
    ($elem:ident) => {
        fn decode_log_prepared(buf: Bytes, expected_ops: u64) -> Box<dyn PreparedLog<Self>> {
            match decode_insert_only::<$elem>(&buf, expected_ops) {
                Some(prepared) => Box::new(prepared),
                None => Box::new(RawPreparedLog { buf, expected_ops }),
            }
        }

        fn replay_prepared(
            &mut self,
            items: Vec<Box<dyn PreparedLog<Self>>>,
        ) -> Result<usize, PreparedReplayError> {
            let mut session = ListReplaySession::new(self.chunk_tree().clone());
            let mut total = 0;
            for (index, item) in items.into_iter().enumerate() {
                if item.as_any().is::<ListPreparedLog<$elem>>() {
                    let prepared = item
                        .into_any()
                        .downcast::<ListPreparedLog<$elem>>()
                        .expect("probed via as_any");
                    total += session
                        .apply(*prepared)
                        .map_err(|error| PreparedReplayError { index, error })?;
                } else {
                    // Foreign slice (deletes/sets decode to raw bytes):
                    // install the session state, replay through the
                    // generic path, resume batching from the result.
                    self.versioned_mut().set_state(session.into_tree());
                    total += item
                        .replay(self)
                        .map_err(|error| PreparedReplayError { index, error })?;
                    session = ListReplaySession::new(self.chunk_tree().clone());
                }
            }
            self.versioned_mut().set_state(session.into_tree());
            self.seal_history();
            Ok(total)
        }
    };
}

/// Chunk shared-run delta overrides for list-shaped structures.
macro_rules! persist_chunk_delta_methods {
    () => {
        fn encode_state_delta(&self, base: &Self, buf: &mut BytesMut) {
            buf.put_u8(DELTA_TAG_CHUNKS);
            encode_delta_parts(&self.chunk_tree().delta_parts(base.chunk_tree()), buf);
        }

        fn decode_state_delta(base: &Self, buf: &mut Bytes) -> Result<Self, DecodeError> {
            match read_u8(buf)? {
                DELTA_TAG_FULL => Self::decode_state(buf),
                DELTA_TAG_CHUNKS => {
                    let parts = decode_delta_parts(buf)?;
                    let tree = ChunkTree::apply_delta(base.chunk_tree(), parts)
                        .ok_or(DecodeError::BadLength(u64::MAX))?;
                    Ok(Self::from_chunk_tree(tree))
                }
                t => Err(DecodeError::BadTag(t)),
            }
        }
    };
}

impl<T> Persist for MList<T>
where
    T: sm_ot::list::Element + Encode + Decode,
{
    fn encode_state(&self, buf: &mut BytesMut) {
        self.to_vec().encode(buf);
    }

    fn decode_state(buf: &mut Bytes) -> Result<Self, DecodeError> {
        Ok(MList::from_vec(Vec::decode(buf)?))
    }

    persist_log_methods!(sm_ot::list::ListOp<T>);
    persist_list_prepared_methods!(T);
    persist_chunk_delta_methods!();
}

impl<T> Persist for MQueue<T>
where
    T: sm_ot::list::Element + Encode + Decode,
{
    fn encode_state(&self, buf: &mut BytesMut) {
        self.to_vec().encode(buf);
    }

    fn decode_state(buf: &mut Bytes) -> Result<Self, DecodeError> {
        Ok(MQueue::from_vec(Vec::decode(buf)?))
    }

    persist_log_methods!(sm_ot::list::ListOp<T>);
    persist_list_prepared_methods!(T);
    persist_chunk_delta_methods!();
}

impl Persist for MText {
    fn encode_state(&self, buf: &mut BytesMut) {
        self.to_string().encode(buf);
    }

    fn decode_state(buf: &mut Bytes) -> Result<Self, DecodeError> {
        Ok(MText::from(String::decode(buf)?))
    }

    fn encode_state_delta(&self, base: &Self, buf: &mut BytesMut) {
        buf.put_u8(DELTA_TAG_CHUNKS);
        encode_delta_parts(&self.rope().delta_parts(base.rope()), buf);
    }

    fn decode_state_delta(base: &Self, buf: &mut Bytes) -> Result<Self, DecodeError> {
        match read_u8(buf)? {
            DELTA_TAG_FULL => Self::decode_state(buf),
            DELTA_TAG_CHUNKS => {
                let parts = decode_delta_parts::<String>(buf)?;
                let rope = Rope::apply_delta(base.rope(), parts)
                    .ok_or(DecodeError::BadLength(u64::MAX))?;
                Ok(MText::from_rope(rope))
            }
            t => Err(DecodeError::BadTag(t)),
        }
    }

    persist_log_methods!(sm_ot::text::TextOp);
}

impl<K, V> Persist for MMap<K, V>
where
    K: sm_ot::map::Key + Encode + Decode,
    V: sm_ot::map::Value + Encode + Decode,
{
    fn encode_state(&self, buf: &mut BytesMut) {
        let entries: Vec<(K, V)> = self.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        entries.encode(buf);
    }

    fn decode_state(buf: &mut Bytes) -> Result<Self, DecodeError> {
        Ok(MMap::from_entries(Vec::<(K, V)>::decode(buf)?))
    }

    persist_log_methods!(sm_ot::map::MapOp<K, V>);
}

impl<T> Persist for MSet<T>
where
    T: sm_ot::set::Element + Encode + Decode,
{
    fn encode_state(&self, buf: &mut BytesMut) {
        let items: Vec<T> = self.iter().cloned().collect();
        items.encode(buf);
    }

    fn decode_state(buf: &mut Bytes) -> Result<Self, DecodeError> {
        Ok(MSet::from_items(Vec::<T>::decode(buf)?))
    }

    persist_log_methods!(sm_ot::set::SetOp<T>);
}

impl Persist for MCounter {
    fn encode_state(&self, buf: &mut BytesMut) {
        self.get().encode(buf);
    }

    fn decode_state(buf: &mut Bytes) -> Result<Self, DecodeError> {
        Ok(MCounter::new(i64::decode(buf)?))
    }

    persist_log_methods!(sm_ot::counter::CounterOp);
}

impl<T> Persist for MRegister<T>
where
    T: sm_ot::register::Value + Encode + Decode,
{
    fn encode_state(&self, buf: &mut BytesMut) {
        self.get().encode(buf);
    }

    fn decode_state(buf: &mut Bytes) -> Result<Self, DecodeError> {
        Ok(MRegister::new(T::decode(buf)?))
    }

    persist_log_methods!(sm_ot::register::RegisterOp<T>);
}

impl<K> Persist for MCounterMap<K>
where
    K: sm_ot::cmap::Key + Encode + Decode,
{
    fn encode_state(&self, buf: &mut BytesMut) {
        let entries: Vec<(K, i64)> = self.iter().map(|(k, v)| (k.clone(), *v)).collect();
        entries.encode(buf);
    }

    fn decode_state(buf: &mut Bytes) -> Result<Self, DecodeError> {
        Ok(MCounterMap::from_entries(Vec::<(K, i64)>::decode(buf)?))
    }

    persist_log_methods!(sm_ot::cmap::CounterMapOp<K>);
}

impl<V> Persist for MTree<V>
where
    V: sm_ot::tree::Value + Encode + Decode,
{
    fn encode_state(&self, buf: &mut BytesMut) {
        self.root().encode(buf);
    }

    fn decode_state(buf: &mut Bytes) -> Result<Self, DecodeError> {
        Ok(MTree::from_root(Node::decode(buf)?))
    }

    persist_log_methods!(sm_ot::tree::TreeOp<V>);
}

impl<M: Persist> Persist for Vec<M> {
    fn encode_state(&self, buf: &mut BytesMut) {
        sm_codec::put_varint(buf, self.len() as u64);
        for m in self {
            m.encode_state(buf);
        }
    }

    fn decode_state(buf: &mut Bytes) -> Result<Self, DecodeError> {
        let len = sm_codec::get_varint(buf)?;
        if len > 1_000_000 {
            return Err(DecodeError::BadLength(len));
        }
        let mut v = Vec::with_capacity(len as usize);
        for _ in 0..len {
            v.push(M::decode_state(buf)?);
        }
        Ok(v)
    }

    fn encode_log(&self, buf: &mut BytesMut) {
        sm_codec::put_varint(buf, self.len() as u64);
        for m in self {
            m.encode_log(buf);
        }
    }

    fn apply_log(&mut self, buf: &mut Bytes) -> Result<usize, ReplayError> {
        let len = sm_codec::get_varint(buf)?;
        if len as usize != self.len() {
            return Err(ReplayError::Shape(format!(
                "log vector length {len} does not match state length {}",
                self.len()
            )));
        }
        let mut total = 0;
        for m in self.iter_mut() {
            total += m.apply_log(buf)?;
        }
        Ok(total)
    }

    fn seal_history(&self) {
        for m in self {
            m.seal_history();
        }
    }

    fn encode_committed_since(
        &self,
        marks: &[usize],
        cursor: &mut usize,
        buf: &mut BytesMut,
    ) -> usize {
        sm_codec::put_varint(buf, self.len() as u64);
        let mut total = 0;
        for m in self {
            total += m.encode_committed_since(marks, cursor, buf);
        }
        total
    }

    fn encode_state_delta(&self, base: &Self, buf: &mut BytesMut) {
        if self.len() != base.len() {
            buf.put_u8(DELTA_TAG_FULL);
            self.encode_state(buf);
            return;
        }
        buf.put_u8(DELTA_TAG_COMPOSITE);
        sm_codec::put_varint(buf, self.len() as u64);
        for (m, b) in self.iter().zip(base) {
            m.encode_state_delta(b, buf);
        }
    }

    fn decode_state_delta(base: &Self, buf: &mut Bytes) -> Result<Self, DecodeError> {
        match read_u8(buf)? {
            DELTA_TAG_FULL => Self::decode_state(buf),
            DELTA_TAG_COMPOSITE => {
                let len = sm_codec::get_varint(buf)?;
                if len as usize != base.len() {
                    return Err(DecodeError::BadLength(len));
                }
                let mut v = Vec::with_capacity(base.len());
                for b in base {
                    v.push(M::decode_state_delta(b, buf)?);
                }
                Ok(v)
            }
            t => Err(DecodeError::BadTag(t)),
        }
    }
}

macro_rules! impl_persist_tuple {
    ( $( $name:ident : $idx:tt ),+ ) => {
        impl<$( $name: Persist ),+> Persist for ( $( $name, )+ ) {
            fn encode_state(&self, buf: &mut BytesMut) {
                $( self.$idx.encode_state(buf); )+
            }

            fn decode_state(buf: &mut Bytes) -> Result<Self, DecodeError> {
                Ok(( $( $name::decode_state(buf)?, )+ ))
            }

            fn encode_log(&self, buf: &mut BytesMut) {
                $( self.$idx.encode_log(buf); )+
            }

            fn apply_log(&mut self, buf: &mut Bytes) -> Result<usize, ReplayError> {
                let mut total = 0;
                $( total += self.$idx.apply_log(buf)?; )+
                Ok(total)
            }

            fn seal_history(&self) {
                $( self.$idx.seal_history(); )+
            }

            fn encode_committed_since(
                &self,
                marks: &[usize],
                cursor: &mut usize,
                buf: &mut BytesMut,
            ) -> usize {
                let mut total = 0;
                $( total += self.$idx.encode_committed_since(marks, cursor, buf); )+
                total
            }

            fn encode_state_delta(&self, base: &Self, buf: &mut BytesMut) {
                buf.put_u8(DELTA_TAG_COMPOSITE);
                $( self.$idx.encode_state_delta(&base.$idx, buf); )+
            }

            fn decode_state_delta(base: &Self, buf: &mut Bytes) -> Result<Self, DecodeError> {
                match read_u8(buf)? {
                    DELTA_TAG_FULL => Self::decode_state(buf),
                    DELTA_TAG_COMPOSITE => {
                        Ok(( $( $name::decode_state_delta(&base.$idx, buf)?, )+ ))
                    }
                    t => Err(DecodeError::BadTag(t)),
                }
            }
        }
    };
}
impl_persist_tuple!(A: 0);
impl_persist_tuple!(A: 0, B: 1);
impl_persist_tuple!(A: 0, B: 1, C: 2);
impl_persist_tuple!(A: 0, B: 1, C: 2, D: 3);

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_state<W: Persist + PartialEq + std::fmt::Debug>(w: &W) {
        let mut buf = BytesMut::new();
        w.encode_state(&mut buf);
        let mut bytes = buf.freeze();
        let back = W::decode_state(&mut bytes).expect("decode");
        assert!(bytes.is_empty(), "state decode must consume everything");
        assert_eq!(&back, w);
    }

    #[test]
    fn state_roundtrips() {
        roundtrip_state(&MList::from_iter([1u32, 2, 3]));
        roundtrip_state(&MQueue::from_iter(["a".to_string(), "b".to_string()]));
        roundtrip_state(&MText::from("héllo"));
        roundtrip_state(&MMap::from_entries([("k".to_string(), 7i64)]));
        roundtrip_state(&MSet::from_items([1u64, 5]));
        roundtrip_state(&MCounter::new(-3));
        roundtrip_state(&MRegister::new(true));
        roundtrip_state(&MCounterMap::from_entries([("w".to_string(), 2i64)]));
        roundtrip_state(&(MCounter::new(1), MText::from("x")));
        roundtrip_state(&vec![MCounter::new(1), MCounter::new(2)]);
    }

    #[test]
    fn tree_state_roundtrips() {
        let mut t = MTree::new(1u32);
        t.push_child(&[], Node::branch(2, vec![Node::leaf(3)]));
        roundtrip_state(&t);
    }

    #[test]
    fn log_ships_and_replays() {
        // Simulate the full remote round trip by hand: fork, ship state,
        // mutate remotely, ship log back, replay onto the shadow, merge.
        let mut coordinator = MList::from_iter([1u32, 2]);
        let shadow = coordinator.fork();

        // Ship the snapshot to the "remote node".
        let mut buf = BytesMut::new();
        shadow.encode_state(&mut buf);
        let mut remote = MList::<u32>::decode_state(&mut buf.freeze()).unwrap();

        // Remote work.
        remote.push(9);
        remote.remove(0);

        // Ship the log back and replay onto the shadow.
        let mut buf = BytesMut::new();
        remote.encode_log(&mut buf);
        let mut shadow = shadow;
        let n = shadow.apply_log(&mut buf.freeze()).unwrap();
        assert_eq!(n, 2);

        // Coordinator meanwhile worked too; merge resolves via OT.
        coordinator.push(5);
        coordinator.merge(&shadow).unwrap();
        assert_eq!(coordinator.to_vec(), vec![2, 5, 9]);
    }

    #[test]
    fn composite_log_roundtrip() {
        let base = (MCounterMap::<String>::new(), MText::new());
        let mut remote = base.clone();
        remote.0.add("w".to_string(), 3);
        remote.1.push_str("hi");
        let mut buf = BytesMut::new();
        remote.encode_log(&mut buf);

        let mut shadow = base.fork();
        let n = shadow.apply_log(&mut buf.freeze()).unwrap();
        assert_eq!(n, 2);
        assert_eq!(shadow.0.get(&"w".to_string()), 3);
        assert_eq!(shadow.1, "hi");
    }

    #[test]
    fn wire_log_is_compacted() {
        // A fork point mid-log blocks in-place tail fusion (the barrier
        // keeps fork bases addressable), so the remote's log holds more
        // ops than necessary. The wire encoding compacts anyway: the
        // whole log is shipped, never sliced, so spans may cross the
        // fork point on the wire.
        let base = MList::from_iter([9u32]);
        let mut remote = base.fork();
        remote.push(1);
        let _pin = remote.fork();
        remote.push(2);
        remote.push(3);
        assert!(remote.pending_ops() >= 2, "fork point blocked fusion");

        let mut buf = BytesMut::new();
        remote.encode_log(&mut buf);
        let mut bytes = buf.freeze();
        let ops: Vec<sm_ot::list::ListOp<u32>> = Vec::decode(&mut bytes).unwrap();
        assert_eq!(
            ops,
            vec![sm_ot::list::ListOp::InsertRun(1, vec![1, 2, 3])],
            "contiguous appends cross the wire as one span"
        );

        // Replaying the compacted log yields the same state as the raw one.
        let mut buf = BytesMut::new();
        remote.encode_log(&mut buf);
        let mut shadow = base.fork();
        shadow.apply_log(&mut buf.freeze()).unwrap();
        assert_eq!(shadow.to_vec(), remote.to_vec());
    }

    #[test]
    fn vec_log_shape_mismatch_detected() {
        let remote = vec![MCounter::new(0), MCounter::new(0)];
        let mut buf = BytesMut::new();
        remote.encode_log(&mut buf);
        let mut wrong_shape = vec![MCounter::new(0)];
        assert!(matches!(
            wrong_shape.apply_log(&mut buf.freeze()),
            Err(ReplayError::Shape(_))
        ));
    }

    #[test]
    fn committed_since_exports_exactly_the_slice_between_marks() {
        let mut data = (MList::<u32>::new(), MText::new());
        data.0.push(1);
        data.1.push_str("a");

        // A journal seals, then captures marks.
        data.seal_history();
        let mut marks = Vec::new();
        data.history_marks(&mut marks);

        // Work committed after the marks.
        data.0.push(2);
        data.0.push(3);
        data.1.push_str("bc");

        data.seal_history();
        let mut buf = BytesMut::new();
        let mut cursor = 0;
        let n = data.encode_committed_since(&marks, &mut cursor, &mut buf);
        assert_eq!(cursor, 2, "one mark consumed per contained log");
        assert_eq!(n, 2, "two spans: one list run, one text insert");

        // Replaying the slice on top of the state-at-marks reproduces the
        // current state.
        let mut replayed = (MList::from_vec(vec![1u32]), MText::from("a"));
        let applied = replayed.apply_log(&mut buf.freeze()).unwrap();
        assert_eq!(applied, n);
        assert_eq!(replayed.0.to_vec(), data.0.to_vec());
        assert_eq!(replayed.1.to_string(), data.1.to_string());
    }

    #[test]
    fn committed_since_is_stable_under_prefix_truncation() {
        // Truncating GC below the mark must not change what is exported:
        // positions are absolute via log_start.
        let mut a = MList::<u32>::new();
        a.push(1);
        a.push(2);
        a.seal_history();
        let mut marks = Vec::new();
        a.history_marks(&mut marks);

        let mut b = a.clone();
        a.push(7);
        b.push(7);
        // GC everything below the mark on one copy only.
        let dropped = b.truncate_history(&marks, &mut 0);
        assert!(dropped > 0);

        let (mut buf_a, mut buf_b) = (BytesMut::new(), BytesMut::new());
        let na = a.encode_committed_since(&marks, &mut 0, &mut buf_a);
        let nb = b.encode_committed_since(&marks, &mut 0, &mut buf_b);
        assert_eq!(na, nb);
        assert_eq!(buf_a, buf_b);
    }

    #[test]
    fn seal_history_makes_exported_slices_immutable() {
        // Without a seal, the next push would fuse into the log tail and
        // rewrite an operation a journal had already persisted. With the
        // seal, the persisted slice stays frozen and the next slice holds
        // the new operation.
        let mut data = MList::<u32>::new();
        data.push(1);

        data.seal_history();
        let mut marks0 = Vec::new();
        data.history_marks(&mut marks0);
        let mut first = BytesMut::new();
        data.encode_committed_since(&[0], &mut 0, &mut first);
        let first = first.freeze();

        data.push(2); // would fuse into Insert(0,1) without the seal

        // Re-exporting the original slice yields identical bytes.
        let mut again = BytesMut::new();
        data.encode_committed_since(&[0], &mut 0, &mut again);
        // The re-export covers the *whole* log (mark 0), so compare the
        // sealed prefix instead: exporting from the sealed mark must
        // contain exactly the post-seal operation.
        let mut suffix = BytesMut::new();
        let n = data.encode_committed_since(&marks0, &mut 0, &mut suffix);
        assert_eq!(n, 1, "post-seal slice holds only the new op");
        let mut replay = MList::from_vec(vec![1u32]);
        replay.apply_log(&mut suffix.freeze()).unwrap();
        assert_eq!(replay.to_vec(), vec![1, 2]);

        // And replaying slice 0 alone reproduces the pre-seal state.
        let mut replay0 = MList::<u32>::new();
        replay0.apply_log(&mut first.clone()).unwrap();
        assert_eq!(replay0.to_vec(), vec![1]);
        let _ = again;
    }
}
