//! [`MRegister`] — a mergeable single-value cell with last-merged-wins
//! semantics. Useful for flags and configuration values a parent wants to
//! broadcast to children through `Sync` (e.g. the netsim's shutdown flag).

use sm_ot::register::{RegisterOp, Value};

use crate::versioned::{CopyMode, MergeError, MergeStats, Versioned};
use crate::Mergeable;

/// A mergeable register holding one `T`.
#[derive(Debug, Clone)]
pub struct MRegister<T: Value> {
    inner: Versioned<RegisterOp<T>>,
}

impl<T: Value> MRegister<T> {
    /// A register holding `initial`.
    pub fn new(initial: T) -> Self {
        MRegister {
            inner: Versioned::new(initial),
        }
    }

    /// A register with an explicit fork [`CopyMode`].
    pub fn with_mode(initial: T, mode: CopyMode) -> Self {
        MRegister {
            inner: Versioned::with_mode(initial, mode),
        }
    }

    /// Borrow the current value.
    pub fn get(&self) -> &T {
        self.inner.state()
    }

    /// Overwrite the value. Writing a value equal to the current one still
    /// records an operation (the write *intention* is preserved — it should
    /// win over a concurrent differing write according to merge order).
    pub fn set(&mut self, value: T) {
        self.inner.record_validated(RegisterOp::set(value));
    }

    /// The recorded local operations (diagnostics / replication layers).
    pub fn log(&self) -> &[RegisterOp<T>] {
        self.inner.log()
    }

    // Engine-room view of the log bookkeeping for the in-crate
    // persistence layer (`crate::persist`).
    pub(crate) fn versioned(&self) -> &Versioned<RegisterOp<T>> {
        &self.inner
    }

    /// Apply and record an operation produced elsewhere (replication /
    /// distributed runtimes).
    pub fn apply_op(&mut self, op: RegisterOp<T>) -> Result<(), sm_ot::ApplyError> {
        self.inner.record(op)
    }
}

impl<T: Value + Default> Default for MRegister<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: Value> PartialEq for MRegister<T> {
    fn eq(&self, other: &Self) -> bool {
        self.get() == other.get()
    }
}

impl<T: Value> Mergeable for MRegister<T> {
    stage_versioned_inner!(stage_versioned);

    fn fork(&self) -> Self {
        MRegister {
            inner: self.inner.fork(),
        }
    }

    fn merge(&mut self, child: &Self) -> Result<MergeStats, MergeError> {
        self.inner.merge(&child.inner)
    }

    fn pending_ops(&self) -> usize {
        self.inner.pending_ops()
    }

    fn history_marks(&self, out: &mut Vec<usize>) {
        out.push(self.inner.history_len());
    }

    fn fork_marks(&self, out: &mut Vec<usize>) {
        out.push(self.inner.fork_base());
    }

    fn truncate_history(&mut self, watermark: &[usize], cursor: &mut usize) -> usize {
        let w = watermark.get(*cursor).copied().unwrap_or(0);
        *cursor += 1;
        self.inner.truncate_prefix(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basics() {
        let mut r = MRegister::new(1);
        assert_eq!(*r.get(), 1);
        r.set(2);
        assert_eq!(*r.get(), 2);
        assert_eq!(r.pending_ops(), 1);
    }

    #[test]
    fn last_merged_write_wins() {
        let mut r = MRegister::new(0);
        let mut a = r.fork();
        let mut b = r.fork();
        a.set(1);
        b.set(2);
        r.merge(&a).unwrap();
        r.merge(&b).unwrap();
        assert_eq!(*r.get(), 2);
    }

    #[test]
    fn child_write_beats_parent_write() {
        let mut r = MRegister::new(0);
        let mut child = r.fork();
        child.set(7);
        r.set(3);
        r.merge(&child).unwrap();
        assert_eq!(*r.get(), 7, "the merged child serializes after the parent");
    }

    #[test]
    fn unmodified_child_leaves_parent_value() {
        let mut r = MRegister::new(5);
        let child = r.fork();
        r.set(6);
        r.merge(&child).unwrap();
        assert_eq!(*r.get(), 6);
    }
}
