//! [`MText`] — a mergeable string ("mergeable strings" are explicitly named
//! by the paper in §II-C), carrying the collaborative-editing OT semantics
//! of the text algebra: concurrent inserts both survive, range deletes
//! split around concurrent insertions.

use sm_ot::state::{Chunks, Rope};
use sm_ot::text::TextOp;

use crate::versioned::{CopyMode, MergeError, MergeStats, Versioned};
use crate::Mergeable;

/// A mergeable text document. Positions are **character** positions.
#[derive(Debug, Clone)]
pub struct MText {
    inner: Versioned<TextOp>,
}

impl MText {
    /// An empty document.
    pub fn new() -> Self {
        MText {
            inner: Versioned::new(Rope::new()),
        }
    }

    /// An empty document with an explicit fork [`CopyMode`].
    pub fn with_mode(mode: CopyMode) -> Self {
        MText {
            inner: Versioned::with_mode(Rope::new(), mode),
        }
    }

    /// Borrow the backing [`Rope`].
    pub fn rope(&self) -> &Rope {
        self.inner.state()
    }

    /// In-order iterator over the document's text chunks. Concatenated,
    /// the chunks are the document; use this (or `to_string()`) to stream
    /// contents without materialising one big `String`.
    pub fn chunks(&self) -> Chunks<'_> {
        self.inner.state().chunks()
    }

    /// Document length in characters — O(1) from the rope root's cached
    /// count.
    pub fn char_len(&self) -> usize {
        self.inner.state().char_len()
    }

    /// True if the document is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.state().is_empty()
    }

    /// Insert `text` at character position `pos`.
    ///
    /// # Panics
    /// Panics if `pos > char_len`.
    pub fn insert_str(&mut self, pos: usize, text: impl Into<String>) {
        let text = text.into();
        if text.is_empty() {
            return;
        }
        assert!(pos <= self.char_len(), "insert position {pos} out of range");
        self.inner.record_validated(TextOp::insert(pos, text));
    }

    /// Append `text` at the end.
    pub fn push_str(&mut self, text: impl Into<String>) {
        let at = self.char_len();
        self.insert_str(at, text);
    }

    /// Delete `len` characters starting at character position `pos`.
    ///
    /// # Panics
    /// Panics if the range exceeds the document.
    pub fn delete_range(&mut self, pos: usize, len: usize) {
        if len == 0 {
            return;
        }
        assert!(
            pos + len <= self.char_len(),
            "delete range {pos}+{len} out of range"
        );
        self.inner.record_validated(TextOp::delete(pos, len));
    }

    /// The recorded local operations (diagnostics / tests).
    pub fn log(&self) -> &[TextOp] {
        self.inner.log()
    }

    // Engine-room view of the log bookkeeping for the in-crate
    // persistence layer (`crate::persist`).
    pub(crate) fn versioned(&self) -> &Versioned<TextOp> {
        &self.inner
    }

    // Base-state constructor from an already-built rope (delta snapshot
    // decode in `crate::persist` — shares the base's chunks).
    pub(crate) fn from_rope(rope: Rope) -> Self {
        MText {
            inner: Versioned::new(rope),
        }
    }

    /// Apply and record an operation produced elsewhere (replication /
    /// distributed runtimes).
    pub fn apply_op(&mut self, op: TextOp) -> Result<(), sm_ot::ApplyError> {
        self.inner.record(op)
    }
}

impl Default for MText {
    fn default() -> Self {
        Self::new()
    }
}

impl From<&str> for MText {
    fn from(s: &str) -> Self {
        MText {
            inner: Versioned::new(Rope::from(s)),
        }
    }
}

impl From<String> for MText {
    fn from(s: String) -> Self {
        MText {
            inner: Versioned::new(Rope::from(s)),
        }
    }
}

impl std::fmt::Display for MText {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Display::fmt(self.inner.state(), f)
    }
}

impl PartialEq for MText {
    fn eq(&self, other: &Self) -> bool {
        self.inner.state() == other.inner.state()
    }
}

impl PartialEq<str> for MText {
    fn eq(&self, other: &str) -> bool {
        self.inner.state() == other
    }
}

impl PartialEq<&str> for MText {
    fn eq(&self, other: &&str) -> bool {
        self.inner.state() == *other
    }
}

impl Mergeable for MText {
    stage_versioned_inner!(stage_versioned_delta);

    fn fork(&self) -> Self {
        MText {
            inner: self.inner.fork(),
        }
    }

    fn merge(&mut self, child: &Self) -> Result<MergeStats, MergeError> {
        self.inner.merge(&child.inner)
    }

    fn pending_ops(&self) -> usize {
        self.inner.pending_ops()
    }

    fn history_marks(&self, out: &mut Vec<usize>) {
        out.push(self.inner.history_len());
    }

    fn fork_marks(&self, out: &mut Vec<usize>) {
        out.push(self.inner.fork_base());
    }

    fn truncate_history(&mut self, watermark: &[usize], cursor: &mut usize) -> usize {
        let w = watermark.get(*cursor).copied().unwrap_or(0);
        *cursor += 1;
        self.inner.truncate_prefix(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn editing_basics() {
        let mut t = MText::from("hello");
        t.push_str(" world");
        t.insert_str(5, ",");
        assert_eq!(t, "hello, world");
        t.delete_range(0, 7);
        assert_eq!(t, "world");
        assert_eq!(t.char_len(), 5);
    }

    #[test]
    fn empty_insert_and_delete_record_nothing() {
        let mut t = MText::from("x");
        t.insert_str(0, "");
        t.delete_range(0, 0);
        assert_eq!(t.pending_ops(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_out_of_range_panics() {
        MText::new().insert_str(1, "x");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn delete_out_of_range_panics() {
        MText::from("ab").delete_range(1, 5);
    }

    #[test]
    fn concurrent_edits_merge() {
        let mut doc = MText::from("The fox jumps");
        let mut alice = doc.fork();
        let mut bob = doc.fork();
        alice.insert_str(4, "quick ");
        bob.push_str(" high");
        doc.merge(&alice).unwrap();
        doc.merge(&bob).unwrap();
        assert_eq!(doc, "The quick fox jumps high");
    }

    #[test]
    fn delete_splits_around_concurrent_insert() {
        let mut doc = MText::from("abcdef");
        let mut deleter = doc.fork();
        let mut inserter = doc.fork();
        deleter.delete_range(1, 4); // delete "bcde"
        inserter.insert_str(3, "XY"); // insert inside the doomed range
        doc.merge(&inserter).unwrap();
        doc.merge(&deleter).unwrap();
        assert_eq!(
            doc, "aXYf",
            "concurrent insert must survive the range delete"
        );
    }

    #[test]
    fn unicode_merge() {
        let mut doc = MText::from("héllo wörld");
        let mut a = doc.fork();
        let mut b = doc.fork();
        a.insert_str(5, "✨");
        b.delete_range(6, 5); // delete "wörld", leaving the space
        doc.merge(&a).unwrap();
        doc.merge(&b).unwrap();
        assert_eq!(doc, "héllo✨ ");
    }

    #[test]
    fn merge_order_is_the_serialization_order() {
        let mut d1 = MText::new();
        let mut a = d1.fork();
        let mut b = d1.fork();
        a.push_str("A");
        b.push_str("B");
        d1.merge(&a).unwrap();
        d1.merge(&b).unwrap();
        assert_eq!(d1, "AB");

        let mut d2 = MText::new();
        let mut a = d2.fork();
        let mut b = d2.fork();
        a.push_str("A");
        b.push_str("B");
        d2.merge(&b).unwrap();
        d2.merge(&a).unwrap();
        assert_eq!(d2, "BA");
    }
}
