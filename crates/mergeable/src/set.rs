//! [`MSet`] — a mergeable set with per-element last-merged-wins conflict
//! semantics and deterministic (ordered) iteration.

use std::collections::BTreeSet;

use sm_ot::set::{Element, SetOp};

use crate::versioned::{CopyMode, MergeError, MergeStats, Versioned};
use crate::Mergeable;

/// A mergeable ordered set.
#[derive(Debug, Clone)]
pub struct MSet<T: Element> {
    inner: Versioned<SetOp<T>>,
}

impl<T: Element> MSet<T> {
    /// An empty set.
    pub fn new() -> Self {
        MSet {
            inner: Versioned::new(BTreeSet::new()),
        }
    }

    /// An empty set with an explicit fork [`CopyMode`].
    pub fn with_mode(mode: CopyMode) -> Self {
        MSet {
            inner: Versioned::with_mode(BTreeSet::new(), mode),
        }
    }

    /// A set seeded from `items` (base state, no operations recorded).
    pub fn from_items(items: impl IntoIterator<Item = T>) -> Self {
        MSet {
            inner: Versioned::new(items.into_iter().collect()),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.inner.state().len()
    }

    /// True if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.state().is_empty()
    }

    /// True if `value` is in the set.
    pub fn contains(&self, value: &T) -> bool {
        self.inner.state().contains(value)
    }

    /// Add `value`; returns true if it was newly added. Adding a present
    /// element records nothing (idempotent).
    pub fn insert(&mut self, value: T) -> bool {
        if self.contains(&value) {
            return false;
        }
        self.inner.record_validated(SetOp::Add(value));
        true
    }

    /// Remove `value`; returns true if it was present. Removing an absent
    /// element records nothing.
    pub fn remove(&mut self, value: &T) -> bool {
        if !self.contains(value) {
            return false;
        }
        self.inner.record_validated(SetOp::Remove(value.clone()));
        true
    }

    /// Iterate elements in order.
    pub fn iter(&self) -> std::collections::btree_set::Iter<'_, T> {
        self.inner.state().iter()
    }

    /// The recorded local operations (diagnostics / tests).
    pub fn log(&self) -> &[SetOp<T>] {
        self.inner.log()
    }

    // Engine-room view of the log bookkeeping for the in-crate
    // persistence layer (`crate::persist`).
    pub(crate) fn versioned(&self) -> &Versioned<SetOp<T>> {
        &self.inner
    }

    /// Apply and record an operation produced elsewhere (replication /
    /// distributed runtimes).
    pub fn apply_op(&mut self, op: SetOp<T>) -> Result<(), sm_ot::ApplyError> {
        self.inner.record(op)
    }
}

impl<T: Element> Default for MSet<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Element> FromIterator<T> for MSet<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        Self::from_items(iter)
    }
}

impl<T: Element> PartialEq for MSet<T> {
    fn eq(&self, other: &Self) -> bool {
        self.inner.state() == other.inner.state()
    }
}

impl<T: Element> Mergeable for MSet<T> {
    stage_versioned_inner!(stage_versioned);

    fn fork(&self) -> Self {
        MSet {
            inner: self.inner.fork(),
        }
    }

    fn merge(&mut self, child: &Self) -> Result<MergeStats, MergeError> {
        self.inner.merge(&child.inner)
    }

    fn pending_ops(&self) -> usize {
        self.inner.pending_ops()
    }

    fn history_marks(&self, out: &mut Vec<usize>) {
        out.push(self.inner.history_len());
    }

    fn fork_marks(&self, out: &mut Vec<usize>) {
        out.push(self.inner.fork_base());
    }

    fn truncate_history(&mut self, watermark: &[usize], cursor: &mut usize) -> usize {
        let w = watermark.get(*cursor).copied().unwrap_or(0);
        *cursor += 1;
        self.inner.truncate_prefix(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basics() {
        let mut s = MSet::new();
        assert!(s.insert(1));
        assert!(!s.insert(1));
        assert!(s.contains(&1));
        assert!(s.remove(&1));
        assert!(!s.remove(&1));
        assert!(s.is_empty());
    }

    #[test]
    fn idempotent_ops_record_nothing() {
        let mut s = MSet::from_items([1]);
        s.insert(1);
        s.remove(&2);
        assert_eq!(s.pending_ops(), 0);
    }

    #[test]
    fn disjoint_adds_union() {
        let mut s = MSet::<u32>::new();
        let mut a = s.fork();
        let mut b = s.fork();
        a.insert(1);
        b.insert(2);
        s.merge(&a).unwrap();
        s.merge(&b).unwrap();
        let items: Vec<_> = s.iter().copied().collect();
        assert_eq!(items, vec![1, 2]);
    }

    #[test]
    fn add_remove_conflict_last_merged_wins() {
        let mut s = MSet::from_items([7u32]);
        let mut adder = s.fork();
        let mut remover = s.fork();
        remover.remove(&7);
        adder.remove(&7);
        adder.insert(7);
        // remover merged last: 7 must be gone.
        s.merge(&adder).unwrap();
        s.merge(&remover).unwrap();
        assert!(!s.contains(&7));
    }
}
