//! [`MList`] — a mergeable list, the paper's flagship structure
//! (`ins(0,obj)` / `del(1)`, listing 1, Figures 1–2).

use sm_ot::list::{Element, ListOp};
use sm_ot::state::ChunkTree;

use crate::versioned::{CopyMode, MergeError, MergeStats, Versioned};
use crate::Mergeable;

/// A mergeable list of `T`.
///
/// Mutations are recorded as operations; concurrent mutations from forked
/// copies are serialized at merge time with operational transformation.
/// Index-based accessors mirror `Vec` and panic on out-of-range indices
/// (the operations are local, so the caller can always check first).
#[derive(Debug, Clone)]
pub struct MList<T: Element> {
    inner: Versioned<ListOp<T>>,
}

impl<T: Element> MList<T> {
    /// An empty list.
    pub fn new() -> Self {
        MList {
            inner: Versioned::new(ChunkTree::new()),
        }
    }

    /// An empty list with an explicit fork [`CopyMode`].
    pub fn with_mode(mode: CopyMode) -> Self {
        MList {
            inner: Versioned::with_mode(ChunkTree::new(), mode),
        }
    }

    /// A list seeded with `items` (no operations recorded: this is the base
    /// state).
    pub fn from_vec(items: Vec<T>) -> Self {
        MList {
            inner: Versioned::new(ChunkTree::from_vec(items)),
        }
    }

    /// A list seeded with `items` and an explicit fork [`CopyMode`].
    pub fn from_vec_with_mode(items: Vec<T>, mode: CopyMode) -> Self {
        MList {
            inner: Versioned::with_mode(ChunkTree::from_vec(items), mode),
        }
    }

    /// Number of elements — O(1) from the chunk tree's cached count.
    pub fn len(&self) -> usize {
        self.inner.state().len()
    }

    /// True if the list holds no elements.
    pub fn is_empty(&self) -> bool {
        self.inner.state().is_empty()
    }

    /// Borrow the element at `index`.
    pub fn get(&self, index: usize) -> Option<&T> {
        self.inner.state().get(index)
    }

    /// Borrow the backing [`ChunkTree`].
    pub fn chunk_tree(&self) -> &ChunkTree<T> {
        self.inner.state()
    }

    /// Copy the list out as a plain `Vec`. O(n).
    pub fn to_vec(&self) -> Vec<T> {
        self.inner.state().to_vec()
    }

    /// Iterate over the elements.
    pub fn iter(&self) -> sm_ot::state::Iter<'_, T> {
        self.inner.state().iter()
    }

    /// Append an element (the paper's `Append`).
    pub fn push(&mut self, value: T) {
        let at = self.len();
        self.inner.record_validated(ListOp::Insert(at, value));
    }

    /// Insert an element at `index`.
    ///
    /// # Panics
    /// Panics if `index > len`.
    pub fn insert(&mut self, index: usize, value: T) {
        assert!(
            index <= self.len(),
            "insert index {index} out of range (len {})",
            self.len()
        );
        self.inner.record_validated(ListOp::Insert(index, value));
    }

    /// Remove and return the element at `index`.
    ///
    /// # Panics
    /// Panics if `index >= len`.
    pub fn remove(&mut self, index: usize) -> T {
        assert!(
            index < self.len(),
            "remove index {index} out of range (len {})",
            self.len()
        );
        // Single state access: the removal both mutates and reads the
        // element, instead of one copy-on-write access to clone it and a
        // second inside `record`.
        self.inner
            .record_with(ListOp::Delete(index), |s| s.remove(index))
    }

    /// Overwrite the element at `index`.
    ///
    /// # Panics
    /// Panics if `index >= len`.
    pub fn set(&mut self, index: usize, value: T) {
        assert!(
            index < self.len(),
            "set index {index} out of range (len {})",
            self.len()
        );
        self.inner.record_validated(ListOp::Set(index, value));
    }

    /// The recorded local operations (diagnostics / tests).
    pub fn log(&self) -> &[ListOp<T>] {
        self.inner.log()
    }

    // Engine-room view of the log bookkeeping for the in-crate
    // persistence layer (`crate::persist`).
    pub(crate) fn versioned(&self) -> &Versioned<ListOp<T>> {
        &self.inner
    }

    pub(crate) fn versioned_mut(&mut self) -> &mut Versioned<ListOp<T>> {
        &mut self.inner
    }

    // Base-state constructor from an already-built chunk tree (delta
    // snapshot decode in `crate::persist` — shares the base's chunks).
    pub(crate) fn from_chunk_tree(tree: ChunkTree<T>) -> Self {
        MList {
            inner: Versioned::new(tree),
        }
    }

    /// Apply and record an operation produced elsewhere (replication /
    /// distributed runtimes).
    pub fn apply_op(&mut self, op: ListOp<T>) -> Result<(), sm_ot::ApplyError> {
        self.inner.record(op)
    }

    /// Whether the backing storage is currently shared with a fork.
    pub fn storage_is_shared(&self) -> bool {
        self.inner.state_is_shared()
    }
}

impl<T: Element> Default for MList<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Element> FromIterator<T> for MList<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        Self::from_vec(iter.into_iter().collect())
    }
}

impl<T: Element> PartialEq for MList<T> {
    fn eq(&self, other: &Self) -> bool {
        self.inner.state() == other.inner.state()
    }
}

impl<T: Element> Mergeable for MList<T> {
    stage_versioned_inner!(stage_versioned_delta);

    fn fork(&self) -> Self {
        MList {
            inner: self.inner.fork(),
        }
    }

    fn merge(&mut self, child: &Self) -> Result<MergeStats, MergeError> {
        self.inner.merge(&child.inner)
    }

    fn pending_ops(&self) -> usize {
        self.inner.pending_ops()
    }

    fn history_marks(&self, out: &mut Vec<usize>) {
        out.push(self.inner.history_len());
    }

    fn fork_marks(&self, out: &mut Vec<usize>) {
        out.push(self.inner.fork_base());
    }

    fn truncate_history(&mut self, watermark: &[usize], cursor: &mut usize) -> usize {
        let w = watermark.get(*cursor).copied().unwrap_or(0);
        *cursor += 1;
        self.inner.truncate_prefix(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let mut l = MList::from_iter([1, 2, 3]);
        assert_eq!(l.len(), 3);
        assert!(!l.is_empty());
        assert_eq!(l.get(1), Some(&2));
        assert_eq!(l.get(5), None);
        assert_eq!(*l.chunk_tree(), vec![1, 2, 3]);
        assert_eq!(l.iter().copied().sum::<i32>(), 6);
        l.set(0, 9);
        assert_eq!(l.remove(0), 9);
        assert_eq!(l.to_vec(), vec![2, 3]);
    }

    #[test]
    fn paper_listing1() {
        // list := NewList(1,2,3); t := Spawn(f, list) where f appends 5;
        // list.Append(4); MergeAllFromSet(t) → [1,2,3,4,5].
        let mut list = MList::from_iter([1, 2, 3]);
        let mut t = list.fork();
        t.push(5);
        list.push(4);
        list.merge(&t).unwrap();
        assert_eq!(list.to_vec(), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "insert index")]
    fn insert_out_of_range_panics() {
        MList::<u8>::new().insert(1, 0);
    }

    #[test]
    #[should_panic(expected = "remove index")]
    fn remove_out_of_range_panics() {
        MList::<u8>::new().remove(0);
    }

    #[test]
    #[should_panic(expected = "set index")]
    fn set_out_of_range_panics() {
        MList::<u8>::new().set(0, 1);
    }

    #[test]
    fn three_sibling_merge_order() {
        let mut l = MList::<u32>::new();
        let mut a = l.fork();
        let mut b = l.fork();
        let mut c = l.fork();
        a.push(1);
        b.push(2);
        c.push(3);
        // Merge in creation order → deterministic [1, 2, 3].
        l.merge(&a).unwrap();
        l.merge(&b).unwrap();
        l.merge(&c).unwrap();
        assert_eq!(l.to_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn concurrent_removes_of_same_element() {
        let mut l = MList::from_iter(['a', 'b', 'c']);
        let mut x = l.fork();
        let mut y = l.fork();
        assert_eq!(x.remove(1), 'b');
        assert_eq!(y.remove(1), 'b');
        l.merge(&x).unwrap();
        l.merge(&y).unwrap();
        assert_eq!(l.to_vec(), vec!['a', 'c'], "b removed exactly once");
    }

    #[test]
    fn fork_isolation() {
        let mut parent = MList::from_iter([1]);
        let mut child = parent.fork();
        child.push(2);
        assert_eq!(parent.to_vec(), vec![1], "parent unaffected before merge");
        parent.push(3);
        assert_eq!(child.to_vec(), vec![1, 2], "child unaffected by parent");
    }

    #[test]
    fn pending_ops_counts_compacted() {
        let mut l = MList::<u8>::new();
        assert_eq!(l.pending_ops(), 0);
        l.push(1);
        l.push(2);
        l.set(0, 3);
        // Contiguous appends and the in-run set fuse into one span op.
        assert_eq!(l.pending_ops(), 1);
        assert_eq!(l.to_vec(), vec![3, 2]);
        let c = l.fork();
        assert_eq!(c.pending_ops(), 0);
    }

    #[test]
    fn equality_is_by_content() {
        let a = MList::from_iter([1, 2]);
        let mut b = MList::from_iter([1]);
        b.push(2);
        assert_eq!(a, b);
    }
}
