//! Shared fork/merge machinery behind every mergeable structure.
//!
//! A [`Versioned`] couples an OT state with the **operation log** the paper
//! requires: *"each task has to record the operations applied to its data
//! structures"* (§I). Forking hands the child the same state plus an empty
//! log and remembers where in the parent's history the fork happened
//! (`fork_base`). Merging rebases the child's log over everything the
//! parent committed since that point (its own operations **and** previously
//! merged siblings'), applies the rebased operations, and appends them to
//! the parent's history — which is exactly why later siblings transform
//! against earlier ones and the whole merge order is serialized.
//!
//! # Copy-on-write
//!
//! The paper flags the fork copy as its main constant overhead (~400 ms for
//! 20 tasks × 20 queues) and names copy-on-write as the future-work remedy.
//! `Versioned` keeps its state behind an [`Arc`]: [`CopyMode::CopyOnWrite`]
//! forks in O(1) and pays one deep copy lazily at the first post-fork write
//! on either side ([`Arc::make_mut`]). [`CopyMode::Deep`] forces the eager
//! copy the paper's unoptimized prototype performed — kept for the ablation
//! benchmarks.
//!
//! # Log compaction and truncation
//!
//! The rebase grid costs O(|committed|·|incoming|) pair transforms, so the
//! log is kept short three ways:
//!
//! 1. **Tail fusion** — [`Versioned::record`] fuses the new operation into
//!    the log tail ([`sm_ot::Operation::compose`] /
//!    [`sm_ot::Operation::annihilates`]) whenever no outstanding fork point
//!    sits at the end of the log (`fuse_barrier`); a fork point between two
//!    fused operations would otherwise see half an operation.
//! 2. **Merge-time compaction** — [`Versioned::merge`] compacts read-only
//!    views of both the committed slice and the child's log
//!    ([`sm_ot::compose::compact_cow`]) before rebasing; compaction rules
//!    are rebase-preserving, so the result is unchanged while the grid
//!    shrinks multiplicatively.
//! 3. **Prefix truncation** — once every live fork descends from a history
//!    position ≥ W, the prefix below W can never be rebased against again;
//!    [`Versioned::truncate_prefix`] drops it and `log_start` keeps indices
//!    absolute. The runtime drives this with a fork watermark (GC).

use std::borrow::Cow;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use sm_ot::compose::compact_cow;
use sm_ot::{seq, ApplyError, OpShape, Operation};

/// Saturating elapsed nanoseconds since `t0`.
fn elapsed_nanos(t0: std::time::Instant) -> u64 {
    t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
}

/// Cached classification of a [`Versioned`]'s retained log, maintained
/// incrementally as operations are pushed so the staged `merge_all`
/// engine can route a batch to a fold lane without rescanning every
/// child log (the old `insert_only` scan was O(total batch ops) per
/// `merge_all`).
///
/// The cache is a *conservative upper bound*: tail fusion and
/// annihilation can only keep or lower an op's
/// [`sm_ot::OpShape`], and a wrong-towards-`Mixed`/`Foreign` answer
/// only costs the fast lane, never correctness — the staging lanes
/// re-screen with [`sm_ot::delta::Delta::rebase_is_order_sensitive`]
/// and debug-assert against the sequential rebase regardless.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LogShape {
    /// Every retained op is a pure insertion (also the empty log).
    /// Delta-foldable and incapable of firing the delete-gap
    /// order-sensitivity screen on its own.
    #[default]
    InsertOnly,
    /// Span-expressible inserts and deletes: delta-foldable behind the
    /// order-sensitivity screen.
    Mixed,
    /// At least one op a span-set cannot express: serial-replay lane.
    Foreign,
}

impl LogShape {
    /// Join the shape of one more pushed op into the cached log shape.
    fn join(self, op: OpShape) -> LogShape {
        match (self, op) {
            (LogShape::Foreign, _) | (_, OpShape::Foreign) => LogShape::Foreign,
            (LogShape::Mixed, _) | (_, OpShape::SpanEdit) => LogShape::Mixed,
            (LogShape::InsertOnly, OpShape::Insert) => LogShape::InsertOnly,
        }
    }

    /// True when the log folds into a sorted span-set delta.
    pub fn delta_foldable(self) -> bool {
        !matches!(self, LogShape::Foreign)
    }

    /// True when every retained op is a pure insertion.
    pub fn insert_only(self) -> bool {
        matches!(self, LogShape::InsertOnly)
    }
}

/// How forking copies the underlying state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CopyMode {
    /// Share the state via `Arc`; deep-copy lazily on the first write after
    /// a fork. The optimized mode and the default.
    #[default]
    CopyOnWrite,
    /// Eagerly deep-copy the state at fork time, like the paper's
    /// proof-of-concept implementation. Used by the fork-cost ablation.
    Deep,
}

/// Statistics returned by a merge, aggregated across composite structures.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MergeStats {
    /// Operations the child had recorded since its fork.
    pub child_ops: usize,
    /// Operations actually applied after rebasing (collapsed duplicates
    /// make this smaller; splits make it larger).
    pub applied_ops: usize,
    /// Parent-side operations the child's log was transformed against.
    pub committed_ops: usize,
    /// Child-side operations after pre-rebase compaction.
    pub child_ops_compacted: usize,
    /// Parent-side operations after pre-rebase compaction.
    pub committed_ops_compacted: usize,
    /// Transformation-grid size actually paid: the product of the two
    /// compacted lengths. Compare with `child_ops * committed_ops` for the
    /// raw grid the merge would have cost without compaction. Zero when the
    /// delta path ran — no grid is built at all.
    pub grid_cells: usize,
    /// Rebases that took the O(m+n) sorted span-set path
    /// ([`sm_ot::delta`]). For composite structures this counts per-field
    /// rebases, so `delta_rebases + grid_rebases` is the total.
    pub delta_rebases: usize,
    /// Rebases that fell back to the pairwise transformation grid
    /// ([`sm_ot::seq`]): non-sequence algebras, logs containing operations
    /// a span-set cannot express (e.g. `ListOp::Set`), and trivial merges
    /// where either side's log was empty.
    pub grid_rebases: usize,
    /// Total normalized spans swept by delta-path rebases (incoming +
    /// committed sides): the m+n the linear transform actually paid.
    pub delta_spans: usize,
    /// Staged-lane commits that fell back to the sequential kernel
    /// because the order-sensitivity screen (or a span-inexpressible
    /// op discovered mid-fold) fired after staging had started. Counts
    /// per fallen-back child; zero on the plain sequential path, whose
    /// screen fires are already visible as `grid_rebases`.
    pub screen_rejects: usize,
    /// Nanoseconds spent in successful delta-path rebases. Timing fields
    /// are only populated while an `sm_obs` recorder is installed (one
    /// relaxed load otherwise) and are wall-clock: excluded from every
    /// determinism check, consumed by the phase-timer histograms.
    pub delta_nanos: u64,
    /// Nanoseconds spent in pre-rebase span compaction (grid path only).
    pub compact_nanos: u64,
    /// Nanoseconds spent in the pairwise transformation grid, including
    /// the declined delta-path attempt that preceded it.
    pub grid_nanos: u64,
    /// Nanoseconds spent applying the rebased operations to the state.
    pub apply_nanos: u64,
}

impl std::ops::AddAssign for MergeStats {
    fn add_assign(&mut self, rhs: Self) {
        self.child_ops += rhs.child_ops;
        self.applied_ops += rhs.applied_ops;
        self.committed_ops += rhs.committed_ops;
        self.child_ops_compacted += rhs.child_ops_compacted;
        self.committed_ops_compacted += rhs.committed_ops_compacted;
        self.grid_cells += rhs.grid_cells;
        self.delta_rebases += rhs.delta_rebases;
        self.grid_rebases += rhs.grid_rebases;
        self.delta_spans += rhs.delta_spans;
        self.screen_rejects += rhs.screen_rejects;
        self.delta_nanos += rhs.delta_nanos;
        self.compact_nanos += rhs.compact_nanos;
        self.grid_nanos += rhs.grid_nanos;
        self.apply_nanos += rhs.apply_nanos;
    }
}

/// Error merging a child structure back into its parent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeError {
    /// The child's fork point lies beyond the parent's history — the child
    /// was not forked from this structure (or histories were tampered with).
    InvalidForkPoint {
        /// The child's recorded fork base.
        fork_base: usize,
        /// The parent's current history length.
        parent_log_len: usize,
    },
    /// The child's fork point lies in a history prefix this structure has
    /// already garbage-collected — the fork watermark advanced past a live
    /// fork, which the runtime's bookkeeping is supposed to prevent.
    ForkPointTruncated {
        /// The child's recorded fork base.
        fork_base: usize,
        /// The first history position still retained.
        log_start: usize,
    },
    /// Composite structures disagree in shape (e.g. `Vec<M>` length drift).
    ShapeMismatch {
        /// Description of the mismatch.
        detail: String,
    },
    /// A rebased operation failed to apply — indicates a transformation
    /// function bug; surfaced loudly rather than silently dropped.
    Apply(ApplyError),
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::InvalidForkPoint {
                fork_base,
                parent_log_len,
            } => write!(
                f,
                "child fork point {fork_base} exceeds parent history length {parent_log_len}; \
                 the child was not forked from this structure"
            ),
            MergeError::ForkPointTruncated {
                fork_base,
                log_start,
            } => write!(
                f,
                "child fork point {fork_base} precedes the retained history start {log_start}; \
                 the committed-log prefix it needs was garbage-collected"
            ),
            MergeError::ShapeMismatch { detail } => write!(f, "shape mismatch: {detail}"),
            MergeError::Apply(e) => write!(f, "rebased operation failed to apply: {e}"),
        }
    }
}

impl std::error::Error for MergeError {}

impl From<ApplyError> for MergeError {
    fn from(e: ApplyError) -> Self {
        MergeError::Apply(e)
    }
}

/// OT state + operation log + fork bookkeeping.
///
/// This is the engine room; the public structures (`MList`, `MQueue`, …)
/// are thin typed façades over it.
///
/// Log positions are **absolute**: the in-memory `log` holds history
/// positions `log_start .. log_start + log.len()`; earlier positions were
/// truncated by [`Versioned::truncate_prefix`] and can never be needed
/// again once every live fork's base is ≥ `log_start`.
#[derive(Debug)]
pub struct Versioned<O: Operation> {
    state: Arc<O::State>,
    log: Vec<O>,
    /// Absolute history position of `log[0]` (count of truncated ops).
    log_start: usize,
    /// Absolute history position this instance was forked at.
    fork_base: usize,
    /// Highest absolute fork base handed out by [`Versioned::fork`].
    /// Recording may only fuse into the log tail when the tail operation's
    /// absolute position is ≥ this barrier — otherwise a live fork point
    /// would end up *between* two fused operations.
    fuse_barrier: AtomicUsize,
    /// Cached [`LogShape`] of `log`, joined incrementally on push.
    shape: LogShape,
    mode: CopyMode,
}

impl<O: Operation> Clone for Versioned<O> {
    fn clone(&self) -> Self {
        Versioned {
            state: Arc::clone(&self.state),
            log: self.log.clone(),
            log_start: self.log_start,
            fork_base: self.fork_base,
            fuse_barrier: AtomicUsize::new(self.fuse_barrier.load(Ordering::Relaxed)),
            shape: self.shape,
            mode: self.mode,
        }
    }
}

impl<O: Operation> Versioned<O> {
    /// Wrap an initial state. The log starts empty; this instance is a root
    /// (its `fork_base` is 0 and meaningless until it is itself a fork).
    pub fn new(state: O::State) -> Self {
        Self::with_mode(state, CopyMode::default())
    }

    /// Wrap an initial state with an explicit [`CopyMode`].
    pub fn with_mode(state: O::State, mode: CopyMode) -> Self {
        Versioned {
            state: Arc::new(state),
            log: Vec::new(),
            log_start: 0,
            fork_base: 0,
            fuse_barrier: AtomicUsize::new(0),
            shape: LogShape::default(),
            mode,
        }
    }

    /// Borrow the current state.
    pub fn state(&self) -> &O::State {
        &self.state
    }

    /// The operations recorded locally and still retained (since creation,
    /// fork, or the last prefix truncation).
    pub fn log(&self) -> &[O] {
        &self.log
    }

    /// Number of locally recorded operations still retained. Tail fusion
    /// makes this a count of *compacted* operations, not of `record` calls.
    pub fn pending_ops(&self) -> usize {
        self.log.len()
    }

    /// Total absolute history length (truncated prefix + retained log).
    pub fn history_len(&self) -> usize {
        self.log_start + self.log.len()
    }

    /// Absolute history position of the first retained operation.
    pub fn log_start(&self) -> usize {
        self.log_start
    }

    /// The (absolute) parent-history position this instance was forked at.
    pub fn fork_base(&self) -> usize {
        self.fork_base
    }

    /// The configured copy mode.
    pub fn mode(&self) -> CopyMode {
        self.mode
    }

    /// Cached [`LogShape`] of the retained log — a conservative upper
    /// bound maintained incrementally on push (see [`LogShape`]); equals
    /// `sm_ot::compose::shape_of_log(self.log())` up to fusion slack.
    pub fn log_shape(&self) -> LogShape {
        self.shape
    }

    /// Append `op` to the log, fusing or cancelling against the tail when
    /// the fork barrier allows it. Does not touch the state.
    fn push_op(&mut self, op: O) {
        let barrier = self.fuse_barrier.load(Ordering::Relaxed);
        self.push_op_with_barrier(op, barrier);
    }

    /// [`Versioned::push_op`] with the fuse barrier pre-loaded, so batch
    /// appenders pay the atomic load once per run instead of per op.
    fn push_op_with_barrier(&mut self, op: O, barrier: usize) {
        if !self.log.is_empty() && self.log_start + self.log.len() > barrier {
            let last = self.log.last().expect("non-empty");
            if Operation::annihilates(last, &op) {
                // The pair vanishes: nothing to join. Survivors keep the
                // (possibly now over-wide) cached shape; an empty log
                // resets to the join identity.
                self.log.pop();
                if self.log.is_empty() {
                    self.shape = LogShape::default();
                }
                return;
            }
            if let Some(fused) = Operation::compose(last, &op) {
                // Fusion can only keep or lower the tail's shape, so
                // joining the unfused op's shape stays a sound bound.
                self.shape = self.shape.join(op.shape());
                *self.log.last_mut().expect("non-empty") = fused;
                return;
            }
        }
        self.shape = self.shape.join(op.shape());
        self.log.push(op);
    }

    /// Append a run of already-applied operations to the log, checking the
    /// fuse barrier **once** for the whole run. The fusion semantics are
    /// identical to pushing one at a time: the barrier only ever guards the
    /// current log tail, and appending can only move the tail *past* the
    /// barrier, never back across it. Used by [`Versioned::merge`] for the
    /// rebased run; does not touch the state.
    pub(crate) fn extend_ops(&mut self, ops: impl IntoIterator<Item = O>) {
        let barrier = self.fuse_barrier.load(Ordering::Relaxed);
        for op in ops {
            self.push_op_with_barrier(op, barrier);
        }
    }

    /// Apply and record a locally generated operation.
    ///
    /// # Errors
    /// Fails if the operation does not apply to the current state; the
    /// state is left unchanged and nothing is recorded.
    pub fn record(&mut self, op: O) -> Result<(), ApplyError> {
        op.apply(Arc::make_mut(&mut self.state))?;
        self.push_op(op);
        Ok(())
    }

    /// Apply and record an operation that the caller has already validated.
    ///
    /// # Panics
    /// Panics if the operation fails to apply — callers use this after
    /// checking preconditions against the current state.
    pub fn record_validated(&mut self, op: O) {
        self.record(op)
            .expect("operation was validated against the current state");
    }

    /// Replace the state wholesale without recording an operation.
    ///
    /// Recovery-only (`crate::persist`): journal replay may reconstruct
    /// the post-replay state through a batched side path and install the
    /// result here. The log stays empty, which is indistinguishable from
    /// a fully GC'd history — both export future committed slices
    /// relative to marks captured after the install.
    pub(crate) fn set_state(&mut self, state: O::State) {
        self.state = Arc::new(state);
    }

    /// Record `op` while performing the state mutation through `mutate`,
    /// which must have exactly the effect `op.apply` would have. This gives
    /// façades a single copy-on-write state access for operations that also
    /// need to *read* the state (e.g. remove-and-return), instead of one
    /// access to read and a second inside `record`.
    pub fn record_with<R>(&mut self, op: O, mutate: impl FnOnce(&mut O::State) -> R) -> R {
        let result = mutate(Arc::make_mut(&mut self.state));
        self.push_op(op);
        result
    }

    /// Fork a child copy: same state, empty log, fork point at the current
    /// end of this instance's history. O(1) under copy-on-write.
    ///
    /// Forking also raises the fuse barrier: operations recorded here after
    /// the fork will not fuse across this fork point, so the child can
    /// always be rebased against an exact suffix of the history.
    #[must_use]
    pub fn fork(&self) -> Self {
        let state = match self.mode {
            CopyMode::CopyOnWrite => Arc::clone(&self.state),
            CopyMode::Deep => Arc::new((*self.state).clone()),
        };
        let here = self.history_len();
        self.fuse_barrier.fetch_max(here, Ordering::Relaxed);
        Versioned {
            state,
            log: Vec::new(),
            log_start: 0,
            fork_base: here,
            fuse_barrier: AtomicUsize::new(0),
            shape: LogShape::default(),
            mode: self.mode,
        }
    }

    /// Merge a forked child back: rebase its log over everything committed
    /// here since the fork, apply, and append to this history.
    ///
    /// When both sides are non-empty and the algebra supports it, the
    /// rebase takes the O(m+n) sorted span-set path
    /// ([`sm_ot::Operation::delta_rebase`]) — both logs fold into
    /// normalized deltas over the fork-base coordinate space and transform
    /// in one linear sweep, no grid at all. Otherwise both sides are
    /// compacted first (read-only; borrowed unchanged when already compact)
    /// and rebased over the pairwise transformation grid; compaction rules
    /// are rebase-preserving, so the result is unchanged while the grid
    /// shrinks multiplicatively. Trivial merges (either log empty) count as
    /// grid rebases in [`MergeStats`] — the grid path's empty-side fast
    /// paths make them O(1) anyway.
    ///
    /// Merging never aborts on conflicting operations — that is the OT
    /// guarantee; the error cases are structural misuse only.
    pub fn merge(&mut self, child: &Self) -> Result<MergeStats, MergeError> {
        if child.fork_base > self.history_len() {
            return Err(MergeError::InvalidForkPoint {
                fork_base: child.fork_base,
                parent_log_len: self.history_len(),
            });
        }
        if child.fork_base < self.log_start {
            return Err(MergeError::ForkPointTruncated {
                fork_base: child.fork_base,
                log_start: self.log_start,
            });
        }
        // Phase timing is live-telemetry only: clocks are read solely
        // while an sm_obs recorder is installed, so the uninstalled
        // merge path pays one relaxed load and no syscalls.
        let timing = sm_obs::is_enabled();
        let committed_raw = &self.log[child.fork_base - self.log_start..];
        let (rebased, mut stats) = rebase_over(&child.log, committed_raw, timing);
        let apply_t0 = timing.then(std::time::Instant::now);
        let state = Arc::make_mut(&mut self.state);
        for op in &rebased {
            op.apply(state)?;
        }
        stats.apply_nanos = apply_t0.map_or(0, elapsed_nanos);
        self.extend_ops(rebased);
        Ok(stats)
    }

    /// The current fuse-barrier position (absolute history coordinate).
    /// Staging replicas capture it once so off-thread tail fusion mirrors
    /// what [`Versioned::extend_ops`] will do at commit time.
    pub(crate) fn barrier_value(&self) -> usize {
        self.fuse_barrier.load(Ordering::Relaxed)
    }

    /// Commit a pre-rebased run produced by the staging engine
    /// ([`crate::parallel`]): validate the fork point exactly like
    /// [`Versioned::merge`], apply the run, and append it to the history.
    ///
    /// `pre` carries the stats measured at staging time; the fields the
    /// determinism auditor hashes (`child_ops`, `applied_ops`,
    /// `committed_ops`) are re-derived here from the real parent log so
    /// they are exact by construction, not by trust. With
    /// `raw_compacted`, the compaction counters are set to the raw
    /// lengths — what the sequential delta path reports.
    ///
    /// Debug builds additionally recompute the sequential rebase against
    /// the live parent log and assert the staged run is bit-identical:
    /// every test that drives a staged merge is a differential test.
    pub(crate) fn commit_staged(
        &mut self,
        child: &Self,
        run: Vec<O>,
        pre: MergeStats,
        raw_compacted: bool,
        timing: bool,
    ) -> Result<MergeStats, MergeError> {
        if child.fork_base > self.history_len() {
            return Err(MergeError::InvalidForkPoint {
                fork_base: child.fork_base,
                parent_log_len: self.history_len(),
            });
        }
        if child.fork_base < self.log_start {
            return Err(MergeError::ForkPointTruncated {
                fork_base: child.fork_base,
                log_start: self.log_start,
            });
        }
        #[cfg(debug_assertions)]
        {
            let committed_raw = &self.log[child.fork_base - self.log_start..];
            let (expect, _) = rebase_over(&child.log, committed_raw, false);
            debug_assert_eq!(
                format!("{run:?}"),
                format!("{expect:?}"),
                "staged run diverged from the sequential rebase"
            );
        }
        let mut stats = pre;
        stats.child_ops = child.log.len();
        stats.committed_ops = self.history_len() - child.fork_base;
        stats.applied_ops = run.len();
        if raw_compacted {
            stats.child_ops_compacted = stats.child_ops;
            stats.committed_ops_compacted = stats.committed_ops;
        }
        let apply_t0 = timing.then(std::time::Instant::now);
        let state = Arc::make_mut(&mut self.state);
        for op in &run {
            op.apply(state)?;
        }
        stats.apply_nanos = apply_t0.map_or(0, elapsed_nanos);
        self.extend_ops(run);
        Ok(stats)
    }

    /// Seal the current history: raise the fuse barrier to the present
    /// history length so no later [`Versioned::record`] can fuse into (or
    /// annihilate) an operation already in the log.
    ///
    /// Durability needs this: a journal that has persisted the log up to
    /// position P must be able to assume those operations are immutable,
    /// but tail fusion rewrites the last log entry in place. Sealing at
    /// every journal commit makes the persisted prefix append-only.
    /// Takes `&self` — the barrier is atomic, exactly like the raise in
    /// [`Versioned::fork`].
    pub fn seal(&self) {
        self.fuse_barrier
            .fetch_max(self.history_len(), Ordering::Relaxed);
    }

    /// Drop every retained operation below the absolute history position
    /// `watermark`; returns how many were dropped. Callers must guarantee
    /// no live fork has a base below `watermark` (the runtime computes the
    /// minimum over live forks). Positions stay absolute via `log_start`,
    /// so later merges and forks are byte-identical to the untruncated run.
    pub fn truncate_prefix(&mut self, watermark: usize) -> usize {
        let keep_from = watermark.saturating_sub(self.log_start).min(self.log.len());
        if keep_from == 0 {
            return 0;
        }
        self.log.drain(..keep_from);
        self.log_start += keep_from;
        if self.log.is_empty() {
            // The cached shape described the dropped prefix too; an
            // empty log is back at the join identity.
            self.shape = LogShape::default();
        }
        keep_from
    }

    /// Whether the state allocation is currently shared with a fork
    /// (diagnostic; used by the copy-on-write tests and benches).
    pub fn state_is_shared(&self) -> bool {
        Arc::strong_count(&self.state) > 1
    }
}

/// Rebase `child_log` over `committed_raw` (both rooted at the same fork
/// base): the delta fast path when the algebra supports it, the compacted
/// pairwise grid otherwise. This is the single rebase kernel shared by
/// [`Versioned::merge`] and the off-thread staging lanes in
/// [`crate::parallel`] — both paths compute, by construction, the same
/// operation run and the same [`MergeStats`] for the same inputs.
///
/// `timing` gates the wall-clock fields (live telemetry only; stats
/// nanos stay zero otherwise and no clock is read).
pub(crate) fn rebase_over<O: Operation>(
    child_log: &[O],
    committed_raw: &[O],
    timing: bool,
) -> (Vec<O>, MergeStats) {
    let attempt_t0 = timing.then(std::time::Instant::now);
    let delta = if !child_log.is_empty() && !committed_raw.is_empty() {
        O::delta_rebase(child_log, committed_raw)
    } else {
        None
    };
    let attempt_nanos = attempt_t0.map_or(0, elapsed_nanos);
    match delta {
        Some((rebased, d)) => {
            let stats = MergeStats {
                child_ops: child_log.len(),
                applied_ops: rebased.len(),
                committed_ops: committed_raw.len(),
                // The delta path never compacts: normalization
                // subsumes it. Report the raw lengths.
                child_ops_compacted: child_log.len(),
                committed_ops_compacted: committed_raw.len(),
                grid_cells: 0,
                delta_rebases: 1,
                grid_rebases: 0,
                delta_spans: d.incoming_spans + d.committed_spans,
                delta_nanos: attempt_nanos,
                ..MergeStats::default()
            };
            (rebased, stats)
        }
        None => {
            let compact_t0 = timing.then(std::time::Instant::now);
            let committed: Cow<'_, [O]> = compact_cow(committed_raw);
            let incoming: Cow<'_, [O]> = compact_cow(child_log);
            let compact_nanos = compact_t0.map_or(0, elapsed_nanos);
            let grid_t0 = timing.then(std::time::Instant::now);
            let rebased = seq::rebase(&incoming, &committed);
            let stats = MergeStats {
                child_ops: child_log.len(),
                applied_ops: rebased.len(),
                committed_ops: committed_raw.len(),
                child_ops_compacted: incoming.len(),
                committed_ops_compacted: committed.len(),
                grid_cells: incoming.len() * committed.len(),
                delta_rebases: 0,
                grid_rebases: 1,
                delta_spans: 0,
                compact_nanos,
                // The declined delta attempt is part of what the
                // grid path cost this merge.
                grid_nanos: attempt_nanos + grid_t0.map_or(0, elapsed_nanos),
                ..MergeStats::default()
            };
            (rebased, stats)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_ot::list::ListOp;
    use sm_ot::state::ChunkTree;

    type V = Versioned<ListOp<u32>>;

    fn ct(v: Vec<u32>) -> ChunkTree<u32> {
        ChunkTree::from_vec(v)
    }

    #[test]
    fn record_applies_and_logs() {
        let mut v = V::new(ct(vec![1, 2, 3]));
        v.record(ListOp::Insert(3, 4)).unwrap();
        assert_eq!(v.state(), &vec![1, 2, 3, 4]);
        assert_eq!(v.pending_ops(), 1);
    }

    #[test]
    fn record_failure_leaves_state_and_log_untouched() {
        let mut v = V::new(ct(vec![1]));
        assert!(v.record(ListOp::Delete(5)).is_err());
        assert_eq!(v.state(), &vec![1]);
        assert_eq!(v.pending_ops(), 0);
    }

    #[test]
    fn contiguous_records_fuse_in_the_log() {
        let mut v = V::new(ct(vec![]));
        for i in 0..10 {
            v.record(ListOp::Insert(i as usize, i)).unwrap();
        }
        assert_eq!(v.state().len(), 10);
        assert_eq!(v.pending_ops(), 1, "contiguous appends fuse to one run");
        assert_eq!(v.history_len(), 1);
    }

    #[test]
    fn insert_then_delete_annihilates_in_the_log() {
        let mut v = V::new(ct(vec![1, 2]));
        v.record(ListOp::Insert(1, 9)).unwrap();
        v.record(ListOp::Delete(1)).unwrap();
        assert_eq!(v.state(), &vec![1, 2]);
        assert_eq!(v.pending_ops(), 0);
    }

    #[test]
    fn fork_barrier_blocks_fusion_across_fork_points() {
        let mut v = V::new(ct(vec![]));
        v.record(ListOp::Insert(0, 1)).unwrap();
        let mut child = v.fork(); // fork point at history position 1
        v.record(ListOp::Insert(1, 2)).unwrap();
        assert_eq!(
            v.pending_ops(),
            2,
            "append after the fork must not fuse across the fork point"
        );
        child.record(ListOp::Insert(1, 3)).unwrap();
        v.merge(&child).unwrap();
        assert_eq!(v.state(), &vec![1, 2, 3]);
    }

    #[test]
    fn seal_blocks_fusion_into_persisted_prefix() {
        let mut v = V::new(ct(vec![]));
        v.record(ListOp::Insert(0, 1)).unwrap();
        v.seal(); // a journal persisted the log up to here
        v.record(ListOp::Insert(1, 2)).unwrap();
        assert_eq!(
            v.pending_ops(),
            2,
            "an append after a seal must not rewrite the sealed tail"
        );
        // Beyond the seal, fusion resumes as usual.
        v.record(ListOp::Insert(2, 3)).unwrap();
        assert_eq!(v.pending_ops(), 2);
        assert_eq!(v.state(), &vec![1, 2, 3]);
    }

    #[test]
    fn record_with_mutates_once_and_logs() {
        let mut v = V::new(ct(vec![10, 20, 30]));
        let removed = v.record_with(ListOp::Delete(1), |s| s.remove(1));
        assert_eq!(removed, 20);
        assert_eq!(v.state(), &vec![10, 30]);
        assert_eq!(v.pending_ops(), 1);
    }

    #[test]
    fn fork_and_merge_disjoint_edits() {
        let mut parent = V::new(ct(vec![1, 2, 3]));
        let mut child = parent.fork();
        child.record(ListOp::Insert(3, 5)).unwrap();
        parent.record(ListOp::Insert(3, 4)).unwrap();

        let stats = parent.merge(&child).unwrap();
        // Parent appended 4 first (committed), child's append transformed
        // after it: [1,2,3,4,5] — the paper's listing 1 result.
        assert_eq!(parent.state(), &vec![1, 2, 3, 4, 5]);
        assert_eq!(stats.child_ops, 1);
        assert_eq!(stats.applied_ops, 1);
        assert_eq!(stats.committed_ops, 1);
        assert_eq!(stats.child_ops_compacted, 1);
        assert_eq!(stats.committed_ops_compacted, 1);
        // Pure sequence logs take the span-set path: no grid is built.
        assert_eq!(stats.grid_cells, 0);
        assert_eq!(stats.delta_rebases, 1);
        assert_eq!(stats.grid_rebases, 0);
        assert!(stats.delta_spans > 0);
    }

    #[test]
    fn merge_with_set_falls_back_to_the_grid() {
        let mut parent = V::new(ct(vec![1, 2, 3]));
        let mut child = parent.fork();
        child.record(ListOp::Set(0, 9)).unwrap();
        parent.record(ListOp::Insert(0, 7)).unwrap();
        let stats = parent.merge(&child).unwrap();
        assert_eq!(parent.state(), &vec![7, 9, 2, 3]);
        assert_eq!(stats.delta_rebases, 0);
        assert_eq!(stats.grid_rebases, 1);
        assert_eq!(stats.grid_cells, 1);
    }

    #[test]
    fn trivial_merge_counts_as_grid() {
        let mut parent = V::new(ct(vec![1]));
        let child = parent.fork();
        parent.record(ListOp::Insert(1, 2)).unwrap();
        let stats = parent.merge(&child).unwrap();
        assert_eq!(stats.delta_rebases, 0);
        assert_eq!(stats.grid_rebases, 1);
        assert_eq!(stats.delta_spans, 0);
    }

    #[test]
    fn delta_and_grid_paths_agree_on_scattered_logs() {
        // Drive the same scattered merge with the real (delta) path and
        // with a Set-poisoned committed log forced onto the grid, after
        // which the Set is overwritten back — both must agree on the
        // sequence part. Cheap inline sanity check; the exhaustive
        // differential suite lives in tests/delta_rebase.rs.
        let mut parent = V::new((0..16).collect::<ChunkTree<u32>>());
        let mut child = parent.fork();
        for (i, pos) in [3usize, 11, 7, 0, 14, 5].iter().enumerate() {
            child.record(ListOp::Insert(*pos, 100 + i as u32)).unwrap();
            parent.record(ListOp::Insert(*pos, 200 + i as u32)).unwrap();
        }
        let mut reference = parent.clone();
        let stats = parent.merge(&child).unwrap();
        assert_eq!(stats.delta_rebases, 1);
        assert_eq!(stats.grid_cells, 0);

        // Reference: rebase the same logs through the grid directly.
        let committed = reference.log()[child.fork_base()..].to_vec();
        let rebased = sm_ot::seq::rebase(child.log(), &committed);
        for op in &rebased {
            reference.record(op.clone()).unwrap();
        }
        assert_eq!(parent.state(), reference.state());
    }

    #[test]
    fn sibling_merges_serialize_in_merge_order() {
        let mut parent = V::new(ct(vec![]));
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        c1.record(ListOp::Insert(0, 10)).unwrap();
        c2.record(ListOp::Insert(0, 20)).unwrap();

        parent.merge(&c1).unwrap();
        parent.merge(&c2).unwrap();
        // c1 merged first: its insert is committed before c2's, and c2's
        // tie-break shifts right.
        assert_eq!(parent.state(), &vec![10, 20]);
    }

    #[test]
    fn merge_order_matters_and_is_deterministic() {
        // merge(x, y) != merge(y, x) in general (§II-A of the paper) —
        // but each order always gives the same answer.
        for _ in 0..5 {
            let mut p1 = V::new(ct(vec![]));
            let mut a = p1.fork();
            let mut b = p1.fork();
            a.record(ListOp::Insert(0, 1)).unwrap();
            b.record(ListOp::Insert(0, 2)).unwrap();
            p1.merge(&a).unwrap();
            p1.merge(&b).unwrap();
            assert_eq!(p1.state(), &vec![1, 2]);

            let mut p2 = V::new(ct(vec![]));
            let mut a = p2.fork();
            let mut b = p2.fork();
            a.record(ListOp::Insert(0, 1)).unwrap();
            b.record(ListOp::Insert(0, 2)).unwrap();
            p2.merge(&b).unwrap();
            p2.merge(&a).unwrap();
            assert_eq!(p2.state(), &vec![2, 1]);
        }
    }

    #[test]
    fn nested_fork_merge() {
        // Child forks a grandchild; the grandchild merges into the child,
        // then the child into the parent.
        let mut parent = V::new(ct(vec![0]));
        let mut child = parent.fork();
        let mut grandchild = child.fork();
        grandchild.record(ListOp::Insert(1, 2)).unwrap();
        child.record(ListOp::Insert(1, 1)).unwrap();
        child.merge(&grandchild).unwrap();
        assert_eq!(child.state(), &vec![0, 1, 2]);

        parent.record(ListOp::Insert(0, 9)).unwrap();
        parent.merge(&child).unwrap();
        assert_eq!(parent.state(), &vec![9, 0, 1, 2]);
    }

    #[test]
    fn invalid_fork_point_rejected() {
        let mut parent = V::new(ct(vec![]));
        let mut other = V::new(ct(vec![]));
        other.record(ListOp::Insert(0, 1)).unwrap();
        let child = other.fork(); // fork_base = 1
        let err = parent.merge(&child).unwrap_err();
        assert!(matches!(
            err,
            MergeError::InvalidForkPoint {
                fork_base: 1,
                parent_log_len: 0
            }
        ));
    }

    #[test]
    fn truncated_fork_point_rejected() {
        let mut parent = V::new(ct(vec![]));
        let mut child = parent.fork(); // fork_base = 0
        child.record(ListOp::Insert(0, 1)).unwrap();
        parent.record(ListOp::Insert(0, 2)).unwrap();
        parent.record(ListOp::Set(0, 3)).unwrap();
        assert_eq!(parent.truncate_prefix(parent.history_len()), 1);
        let err = parent.merge(&child).unwrap_err();
        assert!(matches!(
            err,
            MergeError::ForkPointTruncated {
                fork_base: 0,
                log_start: 1
            }
        ));
    }

    #[test]
    fn truncation_is_transparent_to_later_merges() {
        // Two parents with identical histories; one truncates the prefix
        // below the live fork's base. Subsequent merges must be identical.
        let build = |truncate: bool| {
            let mut parent = V::new(ct(vec![]));
            parent.record(ListOp::Insert(0, 1)).unwrap();
            parent.record(ListOp::Insert(0, 2)).unwrap();
            let mut child = parent.fork(); // fork_base = history_len()
            if truncate {
                let dropped = parent.truncate_prefix(child.fork_base());
                assert!(dropped > 0);
            }
            child.record(ListOp::Insert(0, 3)).unwrap();
            parent.record(ListOp::Insert(0, 4)).unwrap();
            parent.merge(&child).unwrap();
            parent.state().clone()
        };
        assert_eq!(build(false), build(true));
    }

    #[test]
    fn cow_fork_shares_until_write() {
        let mut parent = V::new((0..1000).collect::<ChunkTree<u32>>());
        let child = parent.fork();
        assert!(parent.state_is_shared());
        assert!(child.state_is_shared());
        parent.record(ListOp::Set(0, 99)).unwrap();
        assert!(!parent.state_is_shared(), "write must unshare the writer");
        assert_eq!(child.state()[0], 0, "child view unaffected by parent write");
    }

    #[test]
    fn deep_fork_never_shares() {
        let parent = V::with_mode(ct(vec![1, 2]), CopyMode::Deep);
        let child = parent.fork();
        assert!(!parent.state_is_shared());
        assert!(!child.state_is_shared());
        assert_eq!(child.state(), parent.state());
    }

    #[test]
    fn duplicate_delete_collapses_across_merge() {
        let mut parent = V::new(ct(vec![1, 2, 3]));
        let mut child = parent.fork();
        child.record(ListOp::Delete(0)).unwrap();
        parent.record(ListOp::Delete(0)).unwrap();
        let stats = parent.merge(&child).unwrap();
        assert_eq!(
            parent.state(),
            &vec![2, 3],
            "element 1 deleted once, not twice"
        );
        assert_eq!(stats.child_ops, 1);
        assert_eq!(
            stats.applied_ops, 0,
            "duplicate delete collapses to nothing"
        );
    }

    #[test]
    fn log_shape_cache_tracks_pushes() {
        let mut v = V::new(ct(vec![1, 2, 3]));
        assert!(v.log_shape().insert_only(), "empty log is the identity");
        v.record(ListOp::Insert(3, 4)).unwrap();
        assert_eq!(v.log_shape(), LogShape::InsertOnly);
        v.record(ListOp::Delete(0)).unwrap();
        assert_eq!(v.log_shape(), LogShape::Mixed);
        v.record(ListOp::Set(0, 9)).unwrap();
        assert_eq!(v.log_shape(), LogShape::Foreign);
        // Truncating the whole log resets to the identity.
        assert!(v.truncate_prefix(v.history_len()) > 0);
        assert_eq!(v.log_shape(), LogShape::InsertOnly);
        // The cache agrees with the scan oracle after every push.
        let mut w = V::new(ct(vec![1, 2, 3]));
        for op in [
            ListOp::Insert(0, 7),
            ListOp::Insert(1, 8),
            ListOp::Delete(2),
            ListOp::Insert(0, 9),
        ] {
            w.record(op).unwrap();
            let oracle = match sm_ot::compose::shape_of_log(w.log()) {
                OpShape::Insert => LogShape::InsertOnly,
                OpShape::SpanEdit => LogShape::Mixed,
                OpShape::Foreign => LogShape::Foreign,
            };
            assert_eq!(w.log_shape(), oracle);
        }
    }

    #[test]
    fn log_shape_resets_when_annihilation_empties_the_log() {
        let mut v = V::new(ct(vec![1, 2]));
        v.record(ListOp::Insert(1, 9)).unwrap();
        v.record(ListOp::Delete(1)).unwrap();
        assert_eq!(v.pending_ops(), 0);
        assert!(v.log_shape().insert_only());
    }

    #[test]
    fn merge_of_unmodified_child_is_noop() {
        let mut parent = V::new(ct(vec![1]));
        let child = parent.fork();
        parent.record(ListOp::Insert(1, 2)).unwrap();
        let stats = parent.merge(&child).unwrap();
        assert_eq!(stats.child_ops, 0);
        assert_eq!(parent.state(), &vec![1, 2]);
    }
}
