//! Shared fork/merge machinery behind every mergeable structure.
//!
//! A [`Versioned`] couples an OT state with the **operation log** the paper
//! requires: *"each task has to record the operations applied to its data
//! structures"* (§I). Forking hands the child the same state plus an empty
//! log and remembers where in the parent's history the fork happened
//! (`fork_base`). Merging rebases the child's log over everything the
//! parent committed since that point (its own operations **and** previously
//! merged siblings'), applies the rebased operations, and appends them to
//! the parent's history — which is exactly why later siblings transform
//! against earlier ones and the whole merge order is serialized.
//!
//! # Copy-on-write
//!
//! The paper flags the fork copy as its main constant overhead (~400 ms for
//! 20 tasks × 20 queues) and names copy-on-write as the future-work remedy.
//! `Versioned` keeps its state behind an [`Arc`]: [`CopyMode::CopyOnWrite`]
//! forks in O(1) and pays one deep copy lazily at the first post-fork write
//! on either side ([`Arc::make_mut`]). [`CopyMode::Deep`] forces the eager
//! copy the paper's unoptimized prototype performed — kept for the ablation
//! benchmarks.

use std::fmt;
use std::sync::Arc;

use sm_ot::{seq, ApplyError, Operation};

/// How forking copies the underlying state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CopyMode {
    /// Share the state via `Arc`; deep-copy lazily on the first write after
    /// a fork. The optimized mode and the default.
    #[default]
    CopyOnWrite,
    /// Eagerly deep-copy the state at fork time, like the paper's
    /// proof-of-concept implementation. Used by the fork-cost ablation.
    Deep,
}

/// Statistics returned by a merge, aggregated across composite structures.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MergeStats {
    /// Operations the child had recorded since its fork.
    pub child_ops: usize,
    /// Operations actually applied after rebasing (collapsed duplicates
    /// make this smaller; splits make it larger).
    pub applied_ops: usize,
    /// Parent-side operations the child's log was transformed against.
    pub committed_ops: usize,
}

impl std::ops::AddAssign for MergeStats {
    fn add_assign(&mut self, rhs: Self) {
        self.child_ops += rhs.child_ops;
        self.applied_ops += rhs.applied_ops;
        self.committed_ops += rhs.committed_ops;
    }
}

/// Error merging a child structure back into its parent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeError {
    /// The child's fork point lies beyond the parent's history — the child
    /// was not forked from this structure (or histories were tampered with).
    InvalidForkPoint {
        /// The child's recorded fork base.
        fork_base: usize,
        /// The parent's current history length.
        parent_log_len: usize,
    },
    /// Composite structures disagree in shape (e.g. `Vec<M>` length drift).
    ShapeMismatch {
        /// Description of the mismatch.
        detail: String,
    },
    /// A rebased operation failed to apply — indicates a transformation
    /// function bug; surfaced loudly rather than silently dropped.
    Apply(ApplyError),
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::InvalidForkPoint {
                fork_base,
                parent_log_len,
            } => write!(
                f,
                "child fork point {fork_base} exceeds parent history length {parent_log_len}; \
                 the child was not forked from this structure"
            ),
            MergeError::ShapeMismatch { detail } => write!(f, "shape mismatch: {detail}"),
            MergeError::Apply(e) => write!(f, "rebased operation failed to apply: {e}"),
        }
    }
}

impl std::error::Error for MergeError {}

impl From<ApplyError> for MergeError {
    fn from(e: ApplyError) -> Self {
        MergeError::Apply(e)
    }
}

/// OT state + operation log + fork bookkeeping.
///
/// This is the engine room; the public structures (`MList`, `MQueue`, …)
/// are thin typed façades over it.
#[derive(Debug, Clone)]
pub struct Versioned<O: Operation> {
    state: Arc<O::State>,
    log: Vec<O>,
    fork_base: usize,
    mode: CopyMode,
}

impl<O: Operation> Versioned<O> {
    /// Wrap an initial state. The log starts empty; this instance is a root
    /// (its `fork_base` is 0 and meaningless until it is itself a fork).
    pub fn new(state: O::State) -> Self {
        Versioned {
            state: Arc::new(state),
            log: Vec::new(),
            fork_base: 0,
            mode: CopyMode::default(),
        }
    }

    /// Wrap an initial state with an explicit [`CopyMode`].
    pub fn with_mode(state: O::State, mode: CopyMode) -> Self {
        Versioned {
            state: Arc::new(state),
            log: Vec::new(),
            fork_base: 0,
            mode,
        }
    }

    /// Borrow the current state.
    pub fn state(&self) -> &O::State {
        &self.state
    }

    /// The operations recorded locally (since creation or fork).
    pub fn log(&self) -> &[O] {
        &self.log
    }

    /// Number of locally recorded operations.
    pub fn pending_ops(&self) -> usize {
        self.log.len()
    }

    /// The parent-history position this instance was forked at.
    pub fn fork_base(&self) -> usize {
        self.fork_base
    }

    /// The configured copy mode.
    pub fn mode(&self) -> CopyMode {
        self.mode
    }

    /// Apply and record a locally generated operation.
    ///
    /// # Errors
    /// Fails if the operation does not apply to the current state; the
    /// state is left unchanged and nothing is recorded.
    pub fn record(&mut self, op: O) -> Result<(), ApplyError> {
        op.apply(Arc::make_mut(&mut self.state))?;
        self.log.push(op);
        Ok(())
    }

    /// Apply and record an operation that the caller has already validated.
    ///
    /// # Panics
    /// Panics if the operation fails to apply — callers use this after
    /// checking preconditions against the current state.
    pub fn record_validated(&mut self, op: O) {
        self.record(op)
            .expect("operation was validated against the current state");
    }

    /// Fork a child copy: same state, empty log, fork point at the current
    /// end of this instance's history. O(1) under copy-on-write.
    #[must_use]
    pub fn fork(&self) -> Self {
        let state = match self.mode {
            CopyMode::CopyOnWrite => Arc::clone(&self.state),
            CopyMode::Deep => Arc::new((*self.state).clone()),
        };
        Versioned {
            state,
            log: Vec::new(),
            fork_base: self.log.len(),
            mode: self.mode,
        }
    }

    /// Merge a forked child back: rebase its log over everything committed
    /// here since the fork, apply, and append to this history.
    ///
    /// Merging never aborts on conflicting operations — that is the OT
    /// guarantee; the error cases are structural misuse only.
    pub fn merge(&mut self, child: &Self) -> Result<MergeStats, MergeError> {
        if child.fork_base > self.log.len() {
            return Err(MergeError::InvalidForkPoint {
                fork_base: child.fork_base,
                parent_log_len: self.log.len(),
            });
        }
        let committed = &self.log[child.fork_base..];
        let rebased = seq::rebase(&child.log, committed);
        let state = Arc::make_mut(&mut self.state);
        for op in &rebased {
            op.apply(state)?;
        }
        let stats = MergeStats {
            child_ops: child.log.len(),
            applied_ops: rebased.len(),
            committed_ops: committed.len(),
        };
        self.log.extend(rebased);
        Ok(stats)
    }

    /// Whether the state allocation is currently shared with a fork
    /// (diagnostic; used by the copy-on-write tests and benches).
    pub fn state_is_shared(&self) -> bool {
        Arc::strong_count(&self.state) > 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_ot::list::ListOp;

    type V = Versioned<ListOp<u32>>;

    #[test]
    fn record_applies_and_logs() {
        let mut v = V::new(vec![1, 2, 3]);
        v.record(ListOp::Insert(3, 4)).unwrap();
        assert_eq!(v.state(), &vec![1, 2, 3, 4]);
        assert_eq!(v.pending_ops(), 1);
    }

    #[test]
    fn record_failure_leaves_state_and_log_untouched() {
        let mut v = V::new(vec![1]);
        assert!(v.record(ListOp::Delete(5)).is_err());
        assert_eq!(v.state(), &vec![1]);
        assert_eq!(v.pending_ops(), 0);
    }

    #[test]
    fn fork_and_merge_disjoint_edits() {
        let mut parent = V::new(vec![1, 2, 3]);
        let mut child = parent.fork();
        child.record(ListOp::Insert(3, 5)).unwrap();
        parent.record(ListOp::Insert(3, 4)).unwrap();

        let stats = parent.merge(&child).unwrap();
        // Parent appended 4 first (committed), child's append transformed
        // after it: [1,2,3,4,5] — the paper's listing 1 result.
        assert_eq!(parent.state(), &vec![1, 2, 3, 4, 5]);
        assert_eq!(stats.child_ops, 1);
        assert_eq!(stats.applied_ops, 1);
        assert_eq!(stats.committed_ops, 1);
    }

    #[test]
    fn sibling_merges_serialize_in_merge_order() {
        let mut parent = V::new(vec![]);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        c1.record(ListOp::Insert(0, 10)).unwrap();
        c2.record(ListOp::Insert(0, 20)).unwrap();

        parent.merge(&c1).unwrap();
        parent.merge(&c2).unwrap();
        // c1 merged first: its insert is committed before c2's, and c2's
        // tie-break shifts right.
        assert_eq!(parent.state(), &vec![10, 20]);
    }

    #[test]
    fn merge_order_matters_and_is_deterministic() {
        // merge(x, y) != merge(y, x) in general (§II-A of the paper) —
        // but each order always gives the same answer.
        for _ in 0..5 {
            let mut p1 = V::new(vec![]);
            let mut a = p1.fork();
            let mut b = p1.fork();
            a.record(ListOp::Insert(0, 1)).unwrap();
            b.record(ListOp::Insert(0, 2)).unwrap();
            p1.merge(&a).unwrap();
            p1.merge(&b).unwrap();
            assert_eq!(p1.state(), &vec![1, 2]);

            let mut p2 = V::new(vec![]);
            let mut a = p2.fork();
            let mut b = p2.fork();
            a.record(ListOp::Insert(0, 1)).unwrap();
            b.record(ListOp::Insert(0, 2)).unwrap();
            p2.merge(&b).unwrap();
            p2.merge(&a).unwrap();
            assert_eq!(p2.state(), &vec![2, 1]);
        }
    }

    #[test]
    fn nested_fork_merge() {
        // Child forks a grandchild; the grandchild merges into the child,
        // then the child into the parent.
        let mut parent = V::new(vec![0]);
        let mut child = parent.fork();
        let mut grandchild = child.fork();
        grandchild.record(ListOp::Insert(1, 2)).unwrap();
        child.record(ListOp::Insert(1, 1)).unwrap();
        child.merge(&grandchild).unwrap();
        assert_eq!(child.state(), &vec![0, 1, 2]);

        parent.record(ListOp::Insert(0, 9)).unwrap();
        parent.merge(&child).unwrap();
        assert_eq!(parent.state(), &vec![9, 0, 1, 2]);
    }

    #[test]
    fn invalid_fork_point_rejected() {
        let mut parent = V::new(vec![]);
        let mut other = V::new(vec![]);
        other.record(ListOp::Insert(0, 1)).unwrap();
        let child = other.fork(); // fork_base = 1
        let err = parent.merge(&child).unwrap_err();
        assert!(matches!(
            err,
            MergeError::InvalidForkPoint {
                fork_base: 1,
                parent_log_len: 0
            }
        ));
    }

    #[test]
    fn cow_fork_shares_until_write() {
        let mut parent = V::new((0..1000).collect::<Vec<u32>>());
        let child = parent.fork();
        assert!(parent.state_is_shared());
        assert!(child.state_is_shared());
        parent.record(ListOp::Set(0, 99)).unwrap();
        assert!(!parent.state_is_shared(), "write must unshare the writer");
        assert_eq!(child.state()[0], 0, "child view unaffected by parent write");
    }

    #[test]
    fn deep_fork_never_shares() {
        let parent = V::with_mode(vec![1u32, 2], CopyMode::Deep);
        let child = parent.fork();
        assert!(!parent.state_is_shared());
        assert!(!child.state_is_shared());
        assert_eq!(child.state(), parent.state());
    }

    #[test]
    fn duplicate_delete_collapses_across_merge() {
        let mut parent = V::new(vec![1, 2, 3]);
        let mut child = parent.fork();
        child.record(ListOp::Delete(0)).unwrap();
        parent.record(ListOp::Delete(0)).unwrap();
        let stats = parent.merge(&child).unwrap();
        assert_eq!(
            parent.state(),
            &vec![2, 3],
            "element 1 deleted once, not twice"
        );
        assert_eq!(stats.child_ops, 1);
        assert_eq!(
            stats.applied_ops, 0,
            "duplicate delete collapses to nothing"
        );
    }

    #[test]
    fn merge_of_unmodified_child_is_noop() {
        let mut parent = V::new(vec![1]);
        let child = parent.fork();
        parent.record(ListOp::Insert(1, 2)).unwrap();
        let stats = parent.merge(&child).unwrap();
        assert_eq!(stats.child_ops, 0);
        assert_eq!(parent.state(), &vec![1, 2]);
    }
}
