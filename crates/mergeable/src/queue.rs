//! [`MQueue`] — a mergeable FIFO queue, the structure the paper's network
//! simulation (listing 4, §II-H) builds on (`MergeableQueue`).
//!
//! Internally a queue is a list whose operations are restricted to
//! `push_back` (insert at the tail) and `pop_front` (delete at the head).
//! The OT semantics that fall out are exactly what a simulation wants:
//!
//! * Two tasks concurrently **push** to the same queue → both messages
//!   survive; their order is the (deterministic) merge order.
//! * Two tasks concurrently **pop** the same element → the deletes collapse
//!   and the element is consumed once. In a Spawn & Merge program each
//!   queue has one consumer (its host), so this is a safety net, not a work
//!   dispatch mechanism — a popped value is returned from the *local* copy.

use sm_ot::list::{Element, ListOp};
use sm_ot::state::ChunkTree;

use crate::versioned::{CopyMode, MergeError, MergeStats, Versioned};
use crate::Mergeable;

/// A mergeable FIFO queue of `T`.
#[derive(Debug, Clone)]
pub struct MQueue<T: Element> {
    inner: Versioned<ListOp<T>>,
}

impl<T: Element> MQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        MQueue {
            inner: Versioned::new(ChunkTree::new()),
        }
    }

    /// An empty queue with an explicit fork [`CopyMode`].
    pub fn with_mode(mode: CopyMode) -> Self {
        MQueue {
            inner: Versioned::with_mode(ChunkTree::new(), mode),
        }
    }

    /// A queue seeded with `items` front-to-back (base state, no ops).
    pub fn from_vec(items: Vec<T>) -> Self {
        MQueue {
            inner: Versioned::new(ChunkTree::from_vec(items)),
        }
    }

    /// A seeded queue with an explicit fork [`CopyMode`].
    pub fn from_vec_with_mode(items: Vec<T>, mode: CopyMode) -> Self {
        MQueue {
            inner: Versioned::with_mode(ChunkTree::from_vec(items), mode),
        }
    }

    /// Number of queued elements — O(1) from the chunk tree's cached count.
    pub fn len(&self) -> usize {
        self.inner.state().len()
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.inner.state().is_empty()
    }

    /// Borrow the front element without removing it.
    pub fn front(&self) -> Option<&T> {
        self.inner.state().first()
    }

    /// Enqueue at the back.
    pub fn push_back(&mut self, value: T) {
        let at = self.len();
        self.inner.record_validated(ListOp::Insert(at, value));
    }

    /// Dequeue from the front, if any.
    pub fn pop_front(&mut self) -> Option<T> {
        if self.is_empty() {
            return None;
        }
        // Single state access: remove-and-return in one copy-on-write pass.
        Some(self.inner.record_with(ListOp::Delete(0), |s| s.remove(0)))
    }

    /// Iterate front-to-back.
    pub fn iter(&self) -> sm_ot::state::Iter<'_, T> {
        self.inner.state().iter()
    }

    /// Copy the contents out front-to-back. O(n).
    pub fn to_vec(&self) -> Vec<T> {
        self.inner.state().to_vec()
    }

    /// The recorded local operations (diagnostics / tests).
    pub fn log(&self) -> &[ListOp<T>] {
        self.inner.log()
    }

    // Engine-room view of the log bookkeeping for the in-crate
    // persistence layer (`crate::persist`).
    pub(crate) fn versioned(&self) -> &Versioned<ListOp<T>> {
        &self.inner
    }

    pub(crate) fn versioned_mut(&mut self) -> &mut Versioned<ListOp<T>> {
        &mut self.inner
    }

    pub(crate) fn chunk_tree(&self) -> &ChunkTree<T> {
        self.inner.state()
    }

    // Base-state constructor from an already-built chunk tree (delta
    // snapshot decode in `crate::persist` — shares the base's chunks).
    pub(crate) fn from_chunk_tree(tree: ChunkTree<T>) -> Self {
        MQueue {
            inner: Versioned::new(tree),
        }
    }

    /// Apply and record an operation produced elsewhere (replication /
    /// distributed runtimes).
    pub fn apply_op(&mut self, op: ListOp<T>) -> Result<(), sm_ot::ApplyError> {
        self.inner.record(op)
    }
}

impl<T: Element> Default for MQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Element> FromIterator<T> for MQueue<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        Self::from_vec(iter.into_iter().collect())
    }
}

impl<T: Element> PartialEq for MQueue<T> {
    fn eq(&self, other: &Self) -> bool {
        self.inner.state() == other.inner.state()
    }
}

impl<T: Element> Mergeable for MQueue<T> {
    stage_versioned_inner!(stage_versioned_delta);

    fn fork(&self) -> Self {
        MQueue {
            inner: self.inner.fork(),
        }
    }

    fn merge(&mut self, child: &Self) -> Result<MergeStats, MergeError> {
        self.inner.merge(&child.inner)
    }

    fn pending_ops(&self) -> usize {
        self.inner.pending_ops()
    }

    fn history_marks(&self, out: &mut Vec<usize>) {
        out.push(self.inner.history_len());
    }

    fn fork_marks(&self, out: &mut Vec<usize>) {
        out.push(self.inner.fork_base());
    }

    fn truncate_history(&mut self, watermark: &[usize], cursor: &mut usize) -> usize {
        let w = watermark.get(*cursor).copied().unwrap_or(0);
        *cursor += 1;
        self.inner.truncate_prefix(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_basics() {
        let mut q = MQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.pop_front(), None);
        q.push_back(1);
        q.push_back(2);
        q.push_back(3);
        assert_eq!(q.len(), 3);
        assert_eq!(q.front(), Some(&1));
        assert_eq!(q.pop_front(), Some(1));
        assert_eq!(q.pop_front(), Some(2));
        assert_eq!(q.to_vec(), vec![3]);
    }

    #[test]
    fn concurrent_pushes_both_survive_in_merge_order() {
        let mut q = MQueue::<u32>::new();
        let mut a = q.fork();
        let mut b = q.fork();
        a.push_back(10);
        a.push_back(11);
        b.push_back(20);
        q.merge(&a).unwrap();
        q.merge(&b).unwrap();
        assert_eq!(q.to_vec(), vec![10, 11, 20]);
    }

    #[test]
    fn reversed_merge_order_reverses_result() {
        let mut q = MQueue::<u32>::new();
        let mut a = q.fork();
        let mut b = q.fork();
        a.push_back(10);
        b.push_back(20);
        q.merge(&b).unwrap();
        q.merge(&a).unwrap();
        assert_eq!(q.to_vec(), vec![20, 10]);
    }

    #[test]
    fn concurrent_pop_of_same_element_consumes_once() {
        let mut q = MQueue::from_iter([1, 2]);
        let mut a = q.fork();
        let mut b = q.fork();
        assert_eq!(a.pop_front(), Some(1));
        assert_eq!(b.pop_front(), Some(1));
        q.merge(&a).unwrap();
        q.merge(&b).unwrap();
        assert_eq!(q.to_vec(), vec![2], "head consumed exactly once");
    }

    #[test]
    fn consumer_pops_while_producers_push() {
        // The netsim pattern: one host pops its queue while others push.
        let mut q = MQueue::from_iter([100]);
        let mut consumer = q.fork();
        let mut producer = q.fork();
        assert_eq!(consumer.pop_front(), Some(100));
        producer.push_back(200);
        q.merge(&consumer).unwrap();
        q.merge(&producer).unwrap();
        assert_eq!(q.to_vec(), vec![200]);
    }

    #[test]
    fn pop_on_empty_records_nothing() {
        let mut q = MQueue::<u8>::new();
        assert_eq!(q.pop_front(), None);
        assert_eq!(q.pending_ops(), 0);
    }
}
