//! [`MMap`] — a mergeable key→value map with per-key last-merged-wins
//! conflict semantics and deterministic (ordered) iteration.

use std::collections::BTreeMap;

use sm_ot::map::{Key, MapOp, Value};

use crate::versioned::{CopyMode, MergeError, MergeStats, Versioned};
use crate::Mergeable;

/// A mergeable ordered map.
///
/// Writes to *different* keys from concurrent tasks all survive a merge;
/// writes to the *same* key serialize in merge order (the last merged task
/// wins the key). Iteration order is the key order, so iterating a merged
/// map is deterministic.
#[derive(Debug, Clone)]
pub struct MMap<K: Key, V: Value> {
    inner: Versioned<MapOp<K, V>>,
}

impl<K: Key, V: Value> MMap<K, V> {
    /// An empty map.
    pub fn new() -> Self {
        MMap {
            inner: Versioned::new(BTreeMap::new()),
        }
    }

    /// An empty map with an explicit fork [`CopyMode`].
    pub fn with_mode(mode: CopyMode) -> Self {
        MMap {
            inner: Versioned::with_mode(BTreeMap::new(), mode),
        }
    }

    /// A map seeded from `entries` (base state, no operations recorded).
    pub fn from_entries(entries: impl IntoIterator<Item = (K, V)>) -> Self {
        MMap {
            inner: Versioned::new(entries.into_iter().collect()),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.inner.state().len()
    }

    /// True if the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.inner.state().is_empty()
    }

    /// Borrow the value under `key`.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.inner.state().get(key)
    }

    /// True if `key` is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.inner.state().contains_key(key)
    }

    /// Insert or overwrite `key → value`. Returns the previous value.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let prev = self.inner.state().get(&key).cloned();
        self.inner.record_validated(MapOp::Put(key, value));
        prev
    }

    /// Remove `key`, returning its value if it was present. Removing an
    /// absent key records nothing.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let prev = self.inner.state().get(key).cloned()?;
        self.inner.record_validated(MapOp::Remove(key.clone()));
        Some(prev)
    }

    /// Iterate entries in key order.
    pub fn iter(&self) -> std::collections::btree_map::Iter<'_, K, V> {
        self.inner.state().iter()
    }

    /// Iterate keys in order.
    pub fn keys(&self) -> std::collections::btree_map::Keys<'_, K, V> {
        self.inner.state().keys()
    }

    /// The recorded local operations (diagnostics / tests).
    pub fn log(&self) -> &[MapOp<K, V>] {
        self.inner.log()
    }

    // Engine-room view of the log bookkeeping for the in-crate
    // persistence layer (`crate::persist`).
    pub(crate) fn versioned(&self) -> &Versioned<MapOp<K, V>> {
        &self.inner
    }

    /// Apply and record an operation produced elsewhere (replication /
    /// distributed runtimes).
    pub fn apply_op(&mut self, op: MapOp<K, V>) -> Result<(), sm_ot::ApplyError> {
        self.inner.record(op)
    }
}

impl<K: Key, V: Value> Default for MMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Key, V: Value> FromIterator<(K, V)> for MMap<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        Self::from_entries(iter)
    }
}

impl<K: Key, V: Value> PartialEq for MMap<K, V> {
    fn eq(&self, other: &Self) -> bool {
        self.inner.state() == other.inner.state()
    }
}

impl<K: Key, V: Value> Mergeable for MMap<K, V> {
    stage_versioned_inner!(stage_versioned);

    fn fork(&self) -> Self {
        MMap {
            inner: self.inner.fork(),
        }
    }

    fn merge(&mut self, child: &Self) -> Result<MergeStats, MergeError> {
        self.inner.merge(&child.inner)
    }

    fn pending_ops(&self) -> usize {
        self.inner.pending_ops()
    }

    fn history_marks(&self, out: &mut Vec<usize>) {
        out.push(self.inner.history_len());
    }

    fn fork_marks(&self, out: &mut Vec<usize>) {
        out.push(self.inner.fork_base());
    }

    fn truncate_history(&mut self, watermark: &[usize], cursor: &mut usize) -> usize {
        let w = watermark.get(*cursor).copied().unwrap_or(0);
        *cursor += 1;
        self.inner.truncate_prefix(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basics() {
        let mut m = MMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert("a", 1), None);
        assert_eq!(m.insert("a", 2), Some(1));
        assert_eq!(m.get(&"a"), Some(&2));
        assert!(m.contains_key(&"a"));
        assert_eq!(m.remove(&"a"), Some(2));
        assert_eq!(m.remove(&"a"), None);
        assert_eq!(m.len(), 0);
    }

    #[test]
    fn removing_absent_key_records_nothing() {
        let mut m: MMap<&str, u8> = MMap::new();
        assert_eq!(m.remove(&"nope"), None);
        assert_eq!(m.pending_ops(), 0);
    }

    #[test]
    fn disjoint_key_writes_all_survive() {
        let mut m = MMap::from_entries([("base", 0)]);
        let mut a = m.fork();
        let mut b = m.fork();
        a.insert("x", 1);
        b.insert("y", 2);
        m.merge(&a).unwrap();
        m.merge(&b).unwrap();
        assert_eq!(m.get(&"x"), Some(&1));
        assert_eq!(m.get(&"y"), Some(&2));
        assert_eq!(m.get(&"base"), Some(&0));
    }

    #[test]
    fn same_key_last_merged_wins() {
        let mut m = MMap::new();
        let mut a = m.fork();
        let mut b = m.fork();
        a.insert("k", 1);
        b.insert("k", 2);
        m.merge(&a).unwrap();
        m.merge(&b).unwrap();
        assert_eq!(m.get(&"k"), Some(&2), "later merge wins the key");
    }

    #[test]
    fn child_remove_beats_parent_put() {
        let mut m = MMap::from_entries([("k", 0)]);
        let mut child = m.fork();
        child.remove(&"k");
        m.insert("k", 9);
        m.merge(&child).unwrap();
        assert!(
            !m.contains_key(&"k"),
            "incoming remove serializes after the parent put"
        );
    }

    #[test]
    fn iteration_is_ordered() {
        let mut m = MMap::new();
        m.insert("c", 3);
        m.insert("a", 1);
        m.insert("b", 2);
        let keys: Vec<_> = m.keys().copied().collect();
        assert_eq!(keys, vec!["a", "b", "c"]);
        let sum: i32 = m.iter().map(|(_, v)| v).sum();
        assert_eq!(sum, 6);
    }
}
