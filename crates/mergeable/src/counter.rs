//! [`MCounter`] — a mergeable signed counter. Increments commute, so no
//! concurrent update is ever lost: merging `k` children that each added 1
//! always yields `+k`.

use sm_ot::counter::CounterOp;

use crate::versioned::{CopyMode, MergeError, MergeStats, Versioned};
use crate::Mergeable;

/// A mergeable `i64` counter.
#[derive(Debug, Clone)]
pub struct MCounter {
    inner: Versioned<CounterOp>,
}

impl MCounter {
    /// A counter starting at `initial`.
    pub fn new(initial: i64) -> Self {
        MCounter {
            inner: Versioned::new(initial),
        }
    }

    /// A counter with an explicit fork [`CopyMode`].
    pub fn with_mode(initial: i64, mode: CopyMode) -> Self {
        MCounter {
            inner: Versioned::with_mode(initial, mode),
        }
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        *self.inner.state()
    }

    /// Add a signed delta.
    pub fn add(&mut self, delta: i64) {
        self.inner.record_validated(CounterOp::add(delta));
    }

    /// Increment by one.
    pub fn inc(&mut self) {
        self.add(1);
    }

    /// Decrement by one.
    pub fn dec(&mut self) {
        self.add(-1);
    }

    /// The recorded local operations (diagnostics / replication layers).
    pub fn log(&self) -> &[CounterOp] {
        self.inner.log()
    }

    // Engine-room view of the log bookkeeping for the in-crate
    // persistence layer (`crate::persist`).
    pub(crate) fn versioned(&self) -> &Versioned<CounterOp> {
        &self.inner
    }

    /// Apply and record an operation produced elsewhere (replication /
    /// distributed runtimes).
    pub fn apply_op(&mut self, op: CounterOp) -> Result<(), sm_ot::ApplyError> {
        self.inner.record(op)
    }
}

impl Default for MCounter {
    fn default() -> Self {
        Self::new(0)
    }
}

impl PartialEq for MCounter {
    fn eq(&self, other: &Self) -> bool {
        self.get() == other.get()
    }
}

impl Mergeable for MCounter {
    stage_versioned_inner!(stage_versioned);

    fn fork(&self) -> Self {
        MCounter {
            inner: self.inner.fork(),
        }
    }

    fn merge(&mut self, child: &Self) -> Result<MergeStats, MergeError> {
        self.inner.merge(&child.inner)
    }

    fn pending_ops(&self) -> usize {
        self.inner.pending_ops()
    }

    fn history_marks(&self, out: &mut Vec<usize>) {
        out.push(self.inner.history_len());
    }

    fn fork_marks(&self, out: &mut Vec<usize>) {
        out.push(self.inner.fork_base());
    }

    fn truncate_history(&mut self, watermark: &[usize], cursor: &mut usize) -> usize {
        let w = watermark.get(*cursor).copied().unwrap_or(0);
        *cursor += 1;
        self.inner.truncate_prefix(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basics() {
        let mut c = MCounter::new(10);
        c.add(5);
        c.dec();
        c.inc();
        assert_eq!(c.get(), 15);
    }

    #[test]
    fn no_increment_lost_across_many_children() {
        let mut c = MCounter::new(0);
        let mut children: Vec<MCounter> = (0..20).map(|_| c.fork()).collect();
        for (i, ch) in children.iter_mut().enumerate() {
            for _ in 0..=i {
                ch.inc();
            }
        }
        c.add(100);
        for ch in &children {
            c.merge(ch).unwrap();
        }
        // 100 + 1 + 2 + ... + 20
        assert_eq!(c.get(), 100 + 210);
    }

    #[test]
    fn merge_order_is_irrelevant_for_counters() {
        let build = || {
            let c = MCounter::new(0);
            let mut a = c.fork();
            let mut b = c.fork();
            a.add(3);
            b.add(4);
            (c, a, b)
        };
        let (mut c1, a1, b1) = build();
        c1.merge(&a1).unwrap();
        c1.merge(&b1).unwrap();
        let (mut c2, a2, b2) = build();
        c2.merge(&b2).unwrap();
        c2.merge(&a2).unwrap();
        assert_eq!(c1.get(), c2.get());
        assert_eq!(c1.get(), 7);
    }
}
