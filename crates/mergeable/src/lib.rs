//! Mergeable data structures for **Spawn & Merge**.
//!
//! The paper promises *"a set of commonly used mergeable data structures as
//! a library, e.g. mergeable strings, lists and trees"*, plus *"an interface
//! to implement new mergeable data structures"* (§II-C). This crate is that
//! library:
//!
//! | Structure | OT algebra | Conflict semantics |
//! |---|---|---|
//! | [`MList`] | list insert/delete/set | index shifting; duplicate deletes collapse |
//! | [`MText`] | text insert/range-delete | range splitting; intention preserving |
//! | [`MQueue`] | list ops on a FIFO | concurrent pushes both survive; an element pops once |
//! | [`MMap`] | key put/remove | per-key last-merged-wins |
//! | [`MSet`] | element add/remove | per-element last-merged-wins |
//! | [`MCounter`] | signed add | fully commutative, nothing ever lost |
//! | [`MCounterMap`] | per-key signed add | commutative per key; aggregation-safe |
//! | [`MRegister`] | overwrite | last-merged-wins |
//! | [`MTree`] | ordered-tree insert/delete/set | sibling shifting; deleted subtrees absorb ops |
//!
//! The *interface* is the [`Mergeable`] trait. Every structure implements
//! it; composite program states are built with [`mergeable_struct!`], with
//! tuples, or with `Vec<M>` — all of which fork and merge field-wise /
//! element-wise.
//!
//! # Fork/merge contract
//!
//! `child = parent.fork()` gives the child an isolated copy (lazily via
//! copy-on-write). Both sides mutate freely — every mutation is recorded as
//! an operation. `parent.merge(&child)` rebases the child's operations over
//! whatever the parent committed since the fork (its own edits and
//! previously merged siblings) using operational transformation, so a merge
//! **never aborts**. The merge order chosen by the caller fully determines
//! the result — that is what makes Spawn & Merge deterministic.
//!
//! ```
//! use sm_mergeable::{MList, Mergeable};
//!
//! // Listing 1 of the paper.
//! let mut list = MList::from_iter([1, 2, 3]);
//! let mut child = list.fork();
//! child.push(5);             // child task: l.Append(5)
//! list.push(4);              // parent task: list.Append(4)
//! list.merge(&child).unwrap();
//! assert_eq!(list.to_vec(), vec![1, 2, 3, 4, 5]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Implements [`Mergeable::stage_merge_all`] for a façade wrapping a
/// single `inner: Versioned<_>` log by projecting the batch onto that
/// log and staging it on the named lane (`stage_versioned_delta` for
/// sequence algebras, `stage_versioned` for everything else).
macro_rules! stage_versioned_inner {
    ($lane:ident) => {
        fn stage_merge_all(
            &self,
            children: &[&Self],
            ctx: &crate::parallel::StageCtx,
        ) -> Option<Box<dyn crate::parallel::StagedCommit<Self>>> {
            let inners: Vec<_> = children.iter().map(|c| &c.inner).collect();
            let stage = crate::parallel::$lane(&self.inner, &inners, ctx)?;
            Some(crate::parallel::map_stage(
                |m: &Self| &m.inner,
                |m: &mut Self| &mut m.inner,
                stage,
            ))
        }
    };
}

mod cmap;
mod counter;
mod list;
mod map;
pub mod parallel;
pub mod persist;
mod queue;
mod register;
mod set;
mod text;
mod tree;
mod versioned;

pub use cmap::MCounterMap;
pub use counter::MCounter;
pub use list::MList;
pub use map::MMap;
pub use persist::{Persist, PreparedLog, PreparedReplayError, RawPreparedLog, ReplayError};
pub use queue::MQueue;
pub use register::MRegister;
pub use set::MSet;
pub use text::MText;
pub use tree::MTree;
pub use versioned::{CopyMode, LogShape, MergeError, MergeStats, Versioned};

/// A data structure that can be forked for a child task and merged back.
///
/// This is the paper's "interface to implement new mergeable data
/// structures". Implementations must uphold:
///
/// 1. **Isolation** — after `fork`, mutations on either copy are invisible
///    to the other until a merge.
/// 2. **No aborts** — `merge` succeeds for any child actually forked from
///    `self` (errors signal structural misuse, not conflicts).
/// 3. **Determinism** — the result of a series of merges depends only on
///    the contents of the copies and the merge order, never on timing.
pub trait Mergeable: Clone + Send + 'static {
    /// Create a child copy: identical observable state, empty local
    /// operation record, fork point remembered.
    #[must_use]
    fn fork(&self) -> Self;

    /// Merge a forked child's changes back into `self` via operational
    /// transformation.
    fn merge(&mut self, child: &Self) -> Result<MergeStats, MergeError>;

    /// Operations recorded locally since creation or fork (diagnostics).
    fn pending_ops(&self) -> usize;

    /// Append, one entry per contained [`Versioned`] log (in a fixed
    /// structure-traversal order), the current absolute history length.
    /// Used by the runtime's fork-watermark GC.
    fn history_marks(&self, out: &mut Vec<usize>) {
        let _ = out;
    }

    /// Append, one entry per contained [`Versioned`] log (same traversal
    /// order as [`Mergeable::history_marks`]), the absolute fork base this
    /// copy was forked at. For a root structure this is 0 per log.
    fn fork_marks(&self, out: &mut Vec<usize>) {
        let _ = out;
    }

    /// Truncate each contained log's prefix below the matching entry of
    /// `watermark` (indexed via `cursor`, same traversal order as
    /// [`Mergeable::history_marks`]). Returns the total number of
    /// operations dropped. Callers guarantee every live fork of `self` has
    /// fork bases ≥ the watermark, element-wise.
    fn truncate_history(&mut self, watermark: &[usize], cursor: &mut usize) -> usize {
        let _ = (watermark, cursor);
        0
    }

    /// Stage a whole batch of sibling merges for off-thread pre-rebasing
    /// (see [`parallel`]): return a [`parallel::StagedCommit`] whose
    /// per-child commits are bit-identical to calling
    /// [`Mergeable::merge`] on the children in order, or `None` when the
    /// structure has no parallel seam — the caller then merges
    /// sequentially. The default is `None`; the bundled structures and
    /// the composite derives override it.
    fn stage_merge_all(
        &self,
        children: &[&Self],
        ctx: &parallel::StageCtx,
    ) -> Option<Box<dyn parallel::StagedCommit<Self>>> {
        let _ = (children, ctx);
        None
    }

    /// [`Mergeable::merge`] with an executor for intra-merge (per-field)
    /// parallelism: composite structures merge their large fields on
    /// `ctx.exec` concurrently, folding the per-field results in field
    /// declaration order. The result and stats are identical to `merge`;
    /// the default *is* `merge`.
    fn merge_with_exec(
        &mut self,
        child: &Self,
        ctx: &parallel::StageCtx,
    ) -> Result<MergeStats, MergeError> {
        let _ = ctx;
        self.merge(child)
    }
}

/// Unit state: trivially mergeable (tasks that share no data).
impl Mergeable for () {
    fn fork(&self) -> Self {}

    fn merge(&mut self, _child: &Self) -> Result<MergeStats, MergeError> {
        Ok(MergeStats::default())
    }

    fn pending_ops(&self) -> usize {
        0
    }

    fn stage_merge_all(
        &self,
        _children: &[&Self],
        _ctx: &parallel::StageCtx,
    ) -> Option<Box<dyn parallel::StagedCommit<Self>>> {
        Some(Box::new(parallel::NoopStage))
    }
}

/// Element-wise merge for homogeneous collections of mergeables.
///
/// The vector's *shape* is fixed at fork time (children cannot add or
/// remove elements — use [`MList`] for a mergeable sequence); a length
/// mismatch on merge is reported as [`MergeError::ShapeMismatch`].
impl<M: Mergeable> Mergeable for Vec<M> {
    fn fork(&self) -> Self {
        self.iter().map(Mergeable::fork).collect()
    }

    fn merge(&mut self, child: &Self) -> Result<MergeStats, MergeError> {
        if self.len() != child.len() {
            return Err(MergeError::ShapeMismatch {
                detail: format!("Vec length {} vs child {}", self.len(), child.len()),
            });
        }
        let mut stats = MergeStats::default();
        for (p, c) in self.iter_mut().zip(child) {
            stats += p.merge(c)?;
        }
        Ok(stats)
    }

    fn pending_ops(&self) -> usize {
        self.iter().map(Mergeable::pending_ops).sum()
    }

    fn history_marks(&self, out: &mut Vec<usize>) {
        for m in self {
            m.history_marks(out);
        }
    }

    fn fork_marks(&self, out: &mut Vec<usize>) {
        for m in self {
            m.fork_marks(out);
        }
    }

    fn truncate_history(&mut self, watermark: &[usize], cursor: &mut usize) -> usize {
        self.iter_mut()
            .map(|m| m.truncate_history(watermark, cursor))
            .sum()
    }

    fn stage_merge_all(
        &self,
        children: &[&Self],
        ctx: &parallel::StageCtx,
    ) -> Option<Box<dyn parallel::StagedCommit<Self>>> {
        // The shape is fixed at fork time; a drifted child must take the
        // sequential path so the mismatch surfaces as its usual error.
        if children.iter().any(|c| c.len() != self.len()) {
            return None;
        }
        let mut fields: Vec<Box<dyn parallel::StagedCommit<Self>>> = Vec::with_capacity(self.len());
        for idx in 0..self.len() {
            let kids: Vec<&M> = children.iter().map(|c| &c[idx]).collect();
            let stage = self[idx].stage_merge_all(&kids, ctx);
            fields.push(Box::new(parallel::IndexStage { idx, stage }));
        }
        Some(Box::new(parallel::FieldStage::new(fields)))
    }

    fn merge_with_exec(
        &mut self,
        child: &Self,
        ctx: &parallel::StageCtx,
    ) -> Result<MergeStats, MergeError> {
        if self.len() != child.len() {
            return Err(MergeError::ShapeMismatch {
                detail: format!("Vec length {} vs child {}", self.len(), child.len()),
            });
        }
        let mut jobs: Vec<Option<parallel::FieldMergeJob<M>>> = Vec::with_capacity(self.len());
        for (p, c) in self.iter().zip(child) {
            jobs.push(parallel::spawn_field_merge(p, c, ctx));
        }
        let mut stats = MergeStats::default();
        for ((p, c), job) in self.iter_mut().zip(child).zip(jobs) {
            stats += match job {
                Some(rx) => parallel::recv_field_merge(p, rx)?,
                None => p.merge_with_exec(c, ctx)?,
            };
        }
        Ok(stats)
    }
}

macro_rules! impl_mergeable_tuple {
    ( $( $name:ident : $idx:tt ),+ ) => {
        impl<$( $name: Mergeable ),+> Mergeable for ( $( $name, )+ ) {
            fn fork(&self) -> Self {
                ( $( self.$idx.fork(), )+ )
            }

            fn merge(&mut self, child: &Self) -> Result<MergeStats, MergeError> {
                let mut stats = MergeStats::default();
                $( stats += self.$idx.merge(&child.$idx)?; )+
                Ok(stats)
            }

            fn pending_ops(&self) -> usize {
                0 $( + self.$idx.pending_ops() )+
            }

            fn history_marks(&self, out: &mut Vec<usize>) {
                $( self.$idx.history_marks(out); )+
            }

            fn fork_marks(&self, out: &mut Vec<usize>) {
                $( self.$idx.fork_marks(out); )+
            }

            fn truncate_history(&mut self, watermark: &[usize], cursor: &mut usize) -> usize {
                0 $( + self.$idx.truncate_history(watermark, cursor) )+
            }

            fn stage_merge_all(
                &self,
                children: &[&Self],
                ctx: &parallel::StageCtx,
            ) -> Option<Box<dyn parallel::StagedCommit<Self>>> {
                let mut fields: Vec<Box<dyn parallel::StagedCommit<Self>>> = Vec::new();
                $(
                    {
                        let kids: Vec<&$name> =
                            children.iter().map(|c| &c.$idx).collect();
                        let stage = self.$idx.stage_merge_all(&kids, ctx);
                        fields.push(parallel::project_stage(
                            |d: &Self| &d.$idx,
                            |d: &mut Self| &mut d.$idx,
                            stage,
                        ));
                    }
                )+
                Some(Box::new(parallel::FieldStage::new(fields)))
            }

            fn merge_with_exec(
                &mut self,
                child: &Self,
                ctx: &parallel::StageCtx,
            ) -> Result<MergeStats, MergeError> {
                // One job slot per field, in field order — the receiver
                // tuple mirrors the data tuple, so `jobs.N` is field N's.
                let mut jobs =
                    ( $( parallel::spawn_field_merge(&self.$idx, &child.$idx, ctx), )+ );
                let mut stats = MergeStats::default();
                $(
                    stats += match jobs.$idx.take() {
                        Some(rx) => parallel::recv_field_merge(&mut self.$idx, rx)?,
                        None => self.$idx.merge_with_exec(&child.$idx, ctx)?,
                    };
                )+
                let _ = &mut jobs;
                Ok(stats)
            }
        }
    };
}

impl_mergeable_tuple!(A: 0);
impl_mergeable_tuple!(A: 0, B: 1);
impl_mergeable_tuple!(A: 0, B: 1, C: 2);
impl_mergeable_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_mergeable_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_mergeable_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
impl_mergeable_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
impl_mergeable_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);

/// Define a named composite of mergeable fields and derive [`Mergeable`]
/// for it (field-wise fork and merge).
///
/// ```
/// use sm_mergeable::{mergeable_struct, MCounter, MList, Mergeable};
///
/// mergeable_struct! {
///     /// Shared state of an example application.
///     #[derive(Debug, Clone)]
///     pub struct AppData {
///         pub items: MList<u64>,
///         pub total: MCounter,
///     }
/// }
///
/// let mut data = AppData { items: MList::new(), total: MCounter::new(0) };
/// let mut child = data.fork();
/// child.items.push(7);
/// child.total.add(1);
/// data.merge(&child).unwrap();
/// assert_eq!(data.items.to_vec(), vec![7]);
/// assert_eq!(data.total.get(), 1);
/// ```
#[macro_export]
macro_rules! mergeable_struct {
    (
        $(#[$meta:meta])*
        $vis:vis struct $name:ident {
            $( $(#[$fmeta:meta])* $fvis:vis $field:ident : $fty:ty ),+ $(,)?
        }
    ) => {
        $(#[$meta])*
        $vis struct $name {
            $( $(#[$fmeta])* $fvis $field : $fty, )+
        }

        impl $crate::Mergeable for $name {
            fn fork(&self) -> Self {
                Self { $( $field: $crate::Mergeable::fork(&self.$field), )+ }
            }

            fn merge(&mut self, child: &Self) -> Result<$crate::MergeStats, $crate::MergeError> {
                let mut stats = $crate::MergeStats::default();
                $( stats += $crate::Mergeable::merge(&mut self.$field, &child.$field)?; )+
                Ok(stats)
            }

            fn pending_ops(&self) -> usize {
                0 $( + $crate::Mergeable::pending_ops(&self.$field) )+
            }

            fn history_marks(&self, out: &mut ::std::vec::Vec<usize>) {
                $( $crate::Mergeable::history_marks(&self.$field, out); )+
            }

            fn fork_marks(&self, out: &mut ::std::vec::Vec<usize>) {
                $( $crate::Mergeable::fork_marks(&self.$field, out); )+
            }

            fn truncate_history(
                &mut self,
                watermark: &[usize],
                cursor: &mut usize,
            ) -> usize {
                0 $( + $crate::Mergeable::truncate_history(&mut self.$field, watermark, cursor) )+
            }

            fn stage_merge_all(
                &self,
                children: &[&Self],
                ctx: &$crate::parallel::StageCtx,
            ) -> ::std::option::Option<
                ::std::boxed::Box<dyn $crate::parallel::StagedCommit<Self>>,
            > {
                let mut fields: ::std::vec::Vec<
                    ::std::boxed::Box<dyn $crate::parallel::StagedCommit<Self>>,
                > = ::std::vec::Vec::new();
                $(
                    {
                        let kids: ::std::vec::Vec<&$fty> =
                            children.iter().map(|c| &c.$field).collect();
                        let stage =
                            $crate::Mergeable::stage_merge_all(&self.$field, &kids, ctx);
                        fields.push($crate::parallel::project_stage(
                            |d: &Self| &d.$field,
                            |d: &mut Self| &mut d.$field,
                            stage,
                        ));
                    }
                )+
                ::std::option::Option::Some(::std::boxed::Box::new(
                    $crate::parallel::FieldStage::new(fields),
                ))
            }

            fn merge_with_exec(
                &mut self,
                child: &Self,
                ctx: &$crate::parallel::StageCtx,
            ) -> Result<$crate::MergeStats, $crate::MergeError> {
                // One job binding per field, in field order, named after
                // the field itself.
                let ( $( mut $field, )+ ) = ( $(
                    $crate::parallel::spawn_field_merge(&self.$field, &child.$field, ctx),
                )+ );
                let mut stats = $crate::MergeStats::default();
                $(
                    stats += match $field.take() {
                        ::std::option::Option::Some(rx) => {
                            $crate::parallel::recv_field_merge(&mut self.$field, rx)?
                        }
                        ::std::option::Option::None => {
                            $crate::Mergeable::merge_with_exec(&mut self.$field, &child.$field, ctx)?
                        }
                    };
                )+
                Ok(stats)
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_is_mergeable() {
        let mut u = ();
        let _fork: () = u.fork();
        assert_eq!(u.merge(&()).unwrap(), MergeStats::default());
        assert_eq!(u.pending_ops(), 0);
    }

    #[test]
    fn tuple_merges_fieldwise() {
        let mut data = (MList::from_iter([1u32]), MCounter::new(0));
        let mut child = data.fork();
        child.0.push(2);
        child.1.add(5);
        data.0.push(3);
        let stats = data.merge(&child).unwrap();
        assert_eq!(data.0.to_vec(), vec![1, 3, 2]);
        assert_eq!(data.1.get(), 5);
        assert_eq!(stats.child_ops, 2);
    }

    #[test]
    fn vec_of_mergeables_merges_elementwise() {
        let mut data: Vec<MCounter> = vec![MCounter::new(0), MCounter::new(10)];
        let mut c1 = data.fork();
        let mut c2 = data.fork();
        c1[0].add(1);
        c2[0].add(2);
        c2[1].add(-5);
        data.merge(&c1).unwrap();
        data.merge(&c2).unwrap();
        assert_eq!(data[0].get(), 3);
        assert_eq!(data[1].get(), 5);
    }

    #[test]
    fn vec_shape_mismatch_is_error() {
        let mut data: Vec<MCounter> = vec![MCounter::new(0)];
        let mut child = data.fork();
        child.push(MCounter::new(0));
        assert!(matches!(
            data.merge(&child),
            Err(MergeError::ShapeMismatch { .. })
        ));
    }

    mergeable_struct! {
        #[derive(Debug, Clone)]
        struct Composite {
            list: MList<u8>,
            text: MText,
            count: MCounter,
        }
    }

    #[test]
    fn mergeable_struct_macro_works() {
        let mut data = Composite {
            list: MList::new(),
            text: MText::from("doc: "),
            count: MCounter::new(0),
        };
        let mut child = data.fork();
        child.list.push(1);
        child.text.push_str("child");
        child.count.add(1);
        data.text.push_str("parent ");
        data.count.add(10);

        let stats = data.merge(&child).unwrap();
        assert_eq!(data.list.to_vec(), vec![1]);
        assert_eq!(data.text, "doc: parent child");
        assert_eq!(data.count.get(), 11);
        assert_eq!(stats.child_ops, 3);
        assert!(data.pending_ops() >= 2);
    }

    #[test]
    fn nested_composites_merge() {
        mergeable_struct! {
            #[derive(Debug, Clone)]
            struct Outer {
                inner: Composite,
                reg: MRegister<u8>,
            }
        }
        let mut outer = Outer {
            inner: Composite {
                list: MList::new(),
                text: MText::new(),
                count: MCounter::new(0),
            },
            reg: MRegister::new(0),
        };
        let mut child = outer.fork();
        child.inner.count.add(2);
        child.reg.set(9);
        outer.merge(&child).unwrap();
        assert_eq!(outer.inner.count.get(), 2);
        assert_eq!(outer.reg.get(), &9);
    }
}
