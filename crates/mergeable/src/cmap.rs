//! [`MCounterMap`] — a mergeable map of signed counters.
//!
//! The commutative sibling of [`crate::MMap`]: instead of last-merged-wins
//! values, every key holds a counter and the only mutation is a signed
//! increment. Merges **never lose an update**, whatever the overlap —
//! the right structure for aggregation (word counts, histograms, metrics),
//! and the backbone of the distributed word-count example.

use std::collections::BTreeMap;

use sm_ot::cmap::{CounterMapOp, Key};

use crate::versioned::{CopyMode, MergeError, MergeStats, Versioned};
use crate::Mergeable;

/// A mergeable key → counter map with deterministic (ordered) iteration.
/// Keys with value 0 are canonically absent.
#[derive(Debug, Clone)]
pub struct MCounterMap<K: Key> {
    inner: Versioned<CounterMapOp<K>>,
}

impl<K: Key> MCounterMap<K> {
    /// An empty counter map.
    pub fn new() -> Self {
        MCounterMap {
            inner: Versioned::new(BTreeMap::new()),
        }
    }

    /// An empty counter map with an explicit fork [`CopyMode`].
    pub fn with_mode(mode: CopyMode) -> Self {
        MCounterMap {
            inner: Versioned::with_mode(BTreeMap::new(), mode),
        }
    }

    /// Seed from `(key, value)` entries (base state, no ops). Zero values
    /// are dropped to keep the state canonical.
    pub fn from_entries(entries: impl IntoIterator<Item = (K, i64)>) -> Self {
        let state: BTreeMap<K, i64> = entries.into_iter().filter(|(_, v)| *v != 0).collect();
        MCounterMap {
            inner: Versioned::new(state),
        }
    }

    /// Number of (non-zero) counters.
    pub fn len(&self) -> usize {
        self.inner.state().len()
    }

    /// True if every counter is zero/absent.
    pub fn is_empty(&self) -> bool {
        self.inner.state().is_empty()
    }

    /// The counter under `key` (0 if absent).
    pub fn get(&self, key: &K) -> i64 {
        self.inner.state().get(key).copied().unwrap_or(0)
    }

    /// Add `delta` to the counter under `key`.
    pub fn add(&mut self, key: K, delta: i64) {
        if delta == 0 {
            return;
        }
        self.inner.record_validated(CounterMapOp::add(key, delta));
    }

    /// Increment the counter under `key` by one.
    pub fn inc(&mut self, key: K) {
        self.add(key, 1);
    }

    /// Iterate `(key, value)` in key order.
    pub fn iter(&self) -> std::collections::btree_map::Iter<'_, K, i64> {
        self.inner.state().iter()
    }

    /// Sum of all counters.
    pub fn total(&self) -> i64 {
        self.inner.state().values().sum()
    }

    /// The recorded local operations (diagnostics / replication layers).
    pub fn log(&self) -> &[CounterMapOp<K>] {
        self.inner.log()
    }

    // Engine-room view of the log bookkeeping for the in-crate
    // persistence layer (`crate::persist`).
    pub(crate) fn versioned(&self) -> &Versioned<CounterMapOp<K>> {
        &self.inner
    }

    /// Apply and record an operation produced elsewhere (replication /
    /// distributed runtimes).
    pub fn apply_op(&mut self, op: CounterMapOp<K>) -> Result<(), sm_ot::ApplyError> {
        self.inner.record(op)
    }
}

impl<K: Key> Default for MCounterMap<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Key> PartialEq for MCounterMap<K> {
    fn eq(&self, other: &Self) -> bool {
        self.inner.state() == other.inner.state()
    }
}

impl<K: Key> Mergeable for MCounterMap<K> {
    stage_versioned_inner!(stage_versioned);

    fn fork(&self) -> Self {
        MCounterMap {
            inner: self.inner.fork(),
        }
    }

    fn merge(&mut self, child: &Self) -> Result<MergeStats, MergeError> {
        self.inner.merge(&child.inner)
    }

    fn pending_ops(&self) -> usize {
        self.inner.pending_ops()
    }

    fn history_marks(&self, out: &mut Vec<usize>) {
        out.push(self.inner.history_len());
    }

    fn fork_marks(&self, out: &mut Vec<usize>) {
        out.push(self.inner.fork_base());
    }

    fn truncate_history(&mut self, watermark: &[usize], cursor: &mut usize) -> usize {
        let w = watermark.get(*cursor).copied().unwrap_or(0);
        *cursor += 1;
        self.inner.truncate_prefix(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basics() {
        let mut m = MCounterMap::new();
        assert!(m.is_empty());
        m.inc("a");
        m.add("a", 4);
        m.add("b", -2);
        assert_eq!(m.get(&"a"), 5);
        assert_eq!(m.get(&"b"), -2);
        assert_eq!(m.get(&"missing"), 0);
        assert_eq!(m.total(), 3);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn zero_delta_records_nothing() {
        let mut m: MCounterMap<u8> = MCounterMap::new();
        m.add(1, 0);
        assert_eq!(m.pending_ops(), 0);
    }

    #[test]
    fn canceling_to_zero_removes_key() {
        let mut m = MCounterMap::new();
        m.add("k", 3);
        m.add("k", -3);
        assert!(m.is_empty());
    }

    #[test]
    fn concurrent_same_key_increments_all_survive() {
        let mut m = MCounterMap::from_entries([("hits", 100)]);
        let mut a = m.fork();
        let mut b = m.fork();
        a.add("hits", 7);
        b.add("hits", 8);
        b.inc("other");
        m.add("hits", 1);
        m.merge(&a).unwrap();
        m.merge(&b).unwrap();
        assert_eq!(m.get(&"hits"), 116, "no increment may be lost");
        assert_eq!(m.get(&"other"), 1);
    }

    #[test]
    fn merge_order_is_irrelevant() {
        let build = |swap: bool| {
            let mut m: MCounterMap<&str> = MCounterMap::new();
            let mut a = m.fork();
            let mut b = m.fork();
            a.add("x", 3);
            b.add("x", 4);
            if swap {
                m.merge(&b).unwrap();
                m.merge(&a).unwrap();
            } else {
                m.merge(&a).unwrap();
                m.merge(&b).unwrap();
            }
            m
        };
        assert_eq!(build(false), build(true));
    }

    #[test]
    fn apply_op_replicates() {
        let mut src = MCounterMap::new();
        src.add("w", 5);
        let mut dst = MCounterMap::new();
        for op in src.log() {
            dst.apply_op(op.clone()).unwrap();
        }
        assert_eq!(dst.get(&"w"), 5);
    }
}
