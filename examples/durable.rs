//! Durable Spawn & Merge: journal a run, "crash", recover, continue.
//!
//! Every merge the root commits is appended to a write-ahead log
//! (`sm-store`); recovery replays the journal through the ordinary OT
//! apply path, so the recovered program continues from exactly the state
//! the crashed one had committed — deterministically.
//!
//! ```text
//! cargo run --example durable
//! ```

use spawn_merge::{run_with_store, FsyncPolicy, MList, MText, Pool, Store, StoreOptions, TaskCtx};

type Doc = (MList<u64>, MText);

/// One round of concurrent work: two children and the root all edit.
fn round(ctx: &mut TaskCtx<Doc>, n: u64) {
    let a = ctx.spawn(move |child| {
        child.data_mut().0.push(n * 10);
        Ok(())
    });
    let b = ctx.spawn(move |child| {
        let at = child.data().1.char_len();
        child.data_mut().1.insert_str(at, format!("r{n} "));
        Ok(())
    });
    ctx.data_mut().0.push(n);
    ctx.merge_all_from_set(&[&a, &b]);
}

fn main() {
    let dir = std::env::temp_dir().join(format!("sm-durable-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let options = StoreOptions {
        fsync: FsyncPolicy::EveryN(8), // group commit: the durability/latency dial
        snapshot_every_ops: 64,        // periodic snapshots GC covered WAL segments
        ..StoreOptions::default()
    };

    // ---- incarnation 1: journal 5 rounds, then "crash" (drop, no shutdown).
    let store = Store::open(dir.clone(), options.clone()).expect("open store");
    let (doc, ()) = run_with_store(Doc::default(), Pool::default(), &store, |ctx| {
        for n in 0..5 {
            round(ctx, n);
        }
    })
    .expect("journaled run");
    println!("crashed after 5 rounds: list={:?}", doc.0.to_vec());
    drop(store); // simulated crash: nothing cleaned up, journal left as-is

    // ---- incarnation 2: recover and continue where the journal ends.
    let store = Store::open(dir.clone(), options).expect("reopen store");
    let recovered = store
        .recover::<Doc>()
        .expect("journal intact")
        .expect("journal exists");
    println!(
        "recovered: snapshot seq {}, replayed {} ops through commit {}",
        recovered.snapshot_seq, recovered.replayed_ops, recovered.last_seq
    );
    assert_eq!(recovered.data.0.to_vec(), doc.0.to_vec());

    let (doc, ()) = run_with_store(recovered.data, Pool::default(), &store, |ctx| {
        for n in 5..8 {
            round(ctx, n);
        }
    })
    .expect("continued run");
    println!("after recovery + 3 more rounds:");
    println!("  list = {:?}", doc.0.to_vec());
    println!("  text = {:?}", doc.1.to_string());

    let _ = std::fs::remove_dir_all(&dir);
}
