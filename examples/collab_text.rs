//! Collaborative text editing on mergeable strings — the CSCW heritage of
//! operational transformation (§II-B), driven through Spawn & Merge: three
//! "editors" work on forks of one document; the parent merges them in a
//! deterministic order and all intentions are preserved without locks.
//!
//! ```text
//! cargo run --example collab_text
//! ```

use spawn_merge::{run, MText};

fn main() {
    let document = MText::from("The fox jumps over the dog.");
    println!("base document : {:?}", document.to_string());

    let (merged, ()) = run(document, |ctx| {
        // Editor 1: qualify the fox.
        let e1 = ctx.spawn(|c| {
            let pos = c.data().to_string().find("fox").unwrap();
            c.data_mut().insert_str(pos, "quick brown ");
            Ok(())
        });
        // Editor 2: qualify the dog.
        let e2 = ctx.spawn(|c| {
            let pos = c.data().to_string().find("dog").unwrap();
            c.data_mut().insert_str(pos, "lazy ");
            Ok(())
        });
        // Editor 3: delete " over the dog" and end with an exclamation.
        let e3 = ctx.spawn(|c| {
            let (start, len) = {
                let text = c.data().to_string();
                let start = text.find(" over").unwrap();
                (start, text.len() - start - 1) // keep the final '.'
            };
            c.data_mut().delete_range(start, len);
            let end = c.data().char_len();
            c.data_mut().delete_range(end - 1, 1);
            c.data_mut().push_str("!");
            Ok(())
        });
        // Deterministic merge order: e1, e2, e3 — always the same result.
        ctx.merge_all_from_set(&[&e1, &e2, &e3]);
    });

    let merged_text = merged.to_string();
    println!("merged result : {merged_text:?}");

    // Editor 2's "lazy " was inserted inside the range editor 3 deleted:
    // the range delete was split around it (intention preservation), so
    // the insert survives. Editor 1's and editor 3's edits land verbatim.
    assert!(merged_text.contains("quick brown fox"));
    assert!(merged_text.contains("lazy"));
    assert!(merged_text.ends_with('!'));

    // And it is reproducible: rerunning with adversarial timing changes
    // nothing (try it: the merge order is fixed by the FromSet argument
    // list, not by which editor finishes first).
    println!("\nevery run of this example prints exactly the same merged text.");
}
