//! Reproduce **Figures 1 and 2** of the paper: two processes concurrently
//! editing the list `[a, b, c]` — process A deletes index 2, process B
//! inserts `d` at index 0 — first without operational transformation
//! (divergence), then with it (convergence to `[d, a, b]`).
//!
//! ```text
//! cargo run --example figure1_2
//! ```

use spawn_merge::ot::list::ListOp;
use spawn_merge::ot::state::ChunkTree;
use spawn_merge::ot::{Operation, Side};

type Op = ListOp<char>;

fn show(label: &str, l: &ChunkTree<char>) {
    println!(
        "    {label}: {}",
        l.iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(",")
    );
}

fn main() {
    let base = ChunkTree::from_vec(vec!['a', 'b', 'c']);
    let op_a = Op::Delete(2); // process A: del(2)
    let op_b = Op::Insert(0, 'd'); // process B: ins(0, d)

    println!("Figure 1 — without operational transformation:");
    let mut site_a = base.clone();
    op_a.apply(&mut site_a).unwrap(); // A applies its own op
    op_b.apply(&mut site_a).unwrap(); // ...then B's op, untransformed
    show("process A ends with", &site_a);

    let mut site_b = base.clone();
    op_b.apply(&mut site_b).unwrap();
    op_a.apply(&mut site_b).unwrap(); // untransformed del(2) hits the wrong element
    show("process B ends with", &site_b);
    assert_ne!(site_a, site_b);
    println!("    → divergence: the replicas disagree\n");

    println!("Figure 2 — with operational transformation:");
    let a_transformed = op_a.transform(&op_b, Side::Right).into_vec();
    println!("    A's del(2) transformed against B's ins(0,d) becomes {a_transformed:?}");

    let mut site_a = base.clone();
    op_a.apply(&mut site_a).unwrap();
    for op in op_b.transform(&op_a, Side::Left).into_vec() {
        op.apply(&mut site_a).unwrap();
    }
    show("process A ends with", &site_a);

    let mut site_b = base.clone();
    op_b.apply(&mut site_b).unwrap();
    for op in &a_transformed {
        op.apply(&mut site_b).unwrap();
    }
    show("process B ends with", &site_b);

    assert_eq!(site_a, site_b);
    assert_eq!(site_a, vec!['d', 'a', 'b']);
    println!("    → convergence: both replicas end at [d,a,b], A's intention preserved");
}
