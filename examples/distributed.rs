//! Distributed Spawn & Merge (the paper's MPI future-work direction):
//! a word-count over a simulated cluster. State snapshots ship to worker
//! nodes; operation logs ship back; the coordinator merges them in spawn
//! order — so the distributed result is deterministic no matter which
//! node finishes first.
//!
//! ```text
//! cargo run --example distributed
//! ```

use spawn_merge::dist::{DistRuntime, JobRegistry};
use spawn_merge::{MCounterMap, MText};

/// Shared data: per-word counters (commutative — increments never lost)
/// plus a mergeable report document the jobs append to.
type Data = (MCounterMap<String>, MText);

const CHAPTERS: [&str; 4] = [
    "the quick brown fox jumps over the lazy dog",
    "the dog barks and the fox runs",
    "a quick dog and a lazy fox",
    "the end of the quick tale",
];

fn main() {
    let mut jobs: JobRegistry<Data> = JobRegistry::new();
    jobs.register("wordcount", |data, arg| {
        let text = String::from_utf8_lossy(arg).into_owned();
        let mut words = 0usize;
        for w in text.split_whitespace() {
            data.0.inc(w.to_string());
            words += 1;
        }
        let at = data.1.char_len();
        data.1.insert_str(at, format!("[chunk of {words} words] "));
        Ok(())
    });

    let nodes = 3;
    let mut rt = DistRuntime::launch(nodes, (MCounterMap::new(), MText::new()), &jobs)
        .expect("cluster launch");
    println!("cluster up: {nodes} worker nodes");

    for (i, chapter) in CHAPTERS.iter().enumerate() {
        let node = rt.node_for(i);
        let task = rt
            .spawn(node, "wordcount", chapter.as_bytes())
            .expect("spawn");
        println!("task {task} -> node {node}: {chapter:?}");
    }

    let outcomes = rt.merge_all().expect("merge");
    for o in &outcomes {
        println!(
            "merged task {} from node {} ({} ops)",
            o.task,
            o.node,
            o.result.as_ref().unwrap()
        );
    }

    let (counts, report) = rt.shutdown().expect("shutdown");
    println!("\nreport: {report}");
    println!("word counts (deterministic, spawn-order merge):");
    for (word, n) in counts.iter() {
        println!("  {word:<8} {n}");
    }

    let expected_total: i64 = CHAPTERS
        .iter()
        .map(|c| c.split_whitespace().count() as i64)
        .sum();
    assert_eq!(counts.total(), expected_total, "no word may be lost");
    assert_eq!(counts.get(&"the".to_string()), 6);
    assert_eq!(counts.get(&"fox".to_string()), 3);
    println!("\ntotal words: {} — all accounted for", counts.total());
}
