//! Record & replay of non-deterministic merges — the debugging story.
//!
//! A `merge_any` program's result depends on completion order. This
//! example records one run's merge schedule, then replays it under three
//! different adversarial timings: every replay reproduces the recorded
//! result bit-for-bit. `(inputs, trace)` is a complete reproduction
//! recipe — which is exactly what you want when chasing a bug that "only
//! happens sometimes".
//!
//! ```text
//! cargo run --example replay
//! ```

use spawn_merge::core::{MergeTrace, TaskCtx};
use spawn_merge::{run, MList};

/// Six workers append their id after a timing-dependent delay; the parent
/// merges first-come-first-served.
fn program(jitter: u64, drive: impl FnOnce(&mut TaskCtx<MList<u64>>)) -> Vec<u64> {
    let (list, ()) = run(MList::new(), |ctx| {
        for i in 0..6u64 {
            ctx.spawn(move |c| {
                std::thread::sleep(std::time::Duration::from_micros((i * jitter * 97) % 800));
                c.data_mut().push(i);
                Ok(())
            });
        }
        drive(ctx);
    });
    list.to_vec()
}

fn main() {
    // ── Recording run ──────────────────────────────────────────────────
    let mut trace = MergeTrace::new();
    let recorded = program(
        3,
        |ctx| {
            while ctx.merge_any_recording(&mut trace).is_some() {}
        },
    );
    println!("recorded run      : {recorded:?}");
    println!("recorded schedule : {:?}", trace.decisions());

    // ── A fresh non-deterministic run (may or may not differ) ─────────
    let fresh = program(11, |ctx| while ctx.merge_any().is_some() {});
    println!("fresh merge_any   : {fresh:?}  (no reproducibility promise)");

    // ── Replays under different timing: always identical ──────────────
    for jitter in [1u64, 29, 283] {
        let mut cursor = trace.cursor();
        let replayed = program(jitter, |ctx| {
            while let Ok(Some(_)) = ctx.merge_any_replaying(&mut cursor) {}
        });
        println!("replay (jitter {jitter:>3}): {replayed:?}");
        assert_eq!(replayed, recorded, "replay must reproduce the recording");
    }
    println!("\nevery replay reproduced the recorded run exactly.");
}
