//! The **session server** quickstart: one `sm-server` process hosting
//! many independent durable Spawn/Merge sessions behind a single
//! listener, with clients converging through commit broadcasts.
//!
//! What it shows, end to end:
//!
//! * start a [`SessionServer`] over an in-memory network, sessions
//!   hash-sharded across two shards, each with its own journal on disk;
//! * attach two clients to the same session and one of them to a second,
//!   private session — one connection multiplexes any number of
//!   sessions;
//! * commit concurrently from both clients: the server rebases the later
//!   edit over the earlier one (central OT) and broadcasts the rebased
//!   ops, so both mirrors converge to **bit-identical** state, asserted
//!   by digest;
//! * scrape the live `/metrics` endpoint and print the session gauges
//!   the CI smoke job greps for.
//!
//! ```text
//! cargo run --example sessions
//! ```

use std::sync::Arc;
use std::time::Duration;

use spawn_merge::mergeable::MText;
use spawn_merge::net::Network;
use spawn_merge::obs::{
    self, http_get, DeterminismAuditor, Metrics, MultiRecorder, ObsServer, Recorder,
    TelemetrySources,
};
use spawn_merge::server::{CommitOutcome, ServerConfig, SessionClient, SessionServer};

const PORT: u16 = 4300;
const TELEMETRY_PORT: u16 = 9700;
const DOC: u64 = 1;
const NOTES: u64 = 2;

fn main() {
    // Telemetry plane: metrics + determinism auditor, served on /metrics
    // and /health of the same in-memory network the clients use.
    let metrics = Arc::new(Metrics::new());
    let auditor = Arc::new(DeterminismAuditor::new());
    obs::install(Arc::new(MultiRecorder::new(vec![
        metrics.clone() as Arc<dyn Recorder>,
        auditor.clone() as Arc<dyn Recorder>,
    ])));

    let net = Network::new();
    let dir = std::env::temp_dir().join(format!("sm-example-sessions-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut cfg = ServerConfig::new(&dir);
    cfg.shards = 2;
    let server = SessionServer::start(&net, PORT, cfg, || MText::from("shared doc: "))
        .expect("server starts");

    let mut sources = TelemetrySources::named("sessions-example");
    sources.metrics = Some(metrics.clone());
    sources.auditor = Some(auditor);
    let telemetry = ObsServer::start(&net, TELEMETRY_PORT, sources).expect("telemetry port free");

    // Two clients, same session. Alice also keeps a private session on
    // the same connection.
    let mut alice: SessionClient<MText> = SessionClient::connect(&net, PORT).unwrap();
    let mut bob: SessionClient<MText> = SessionClient::connect(&net, PORT).unwrap();
    assert_eq!(alice.attach(DOC).unwrap(), 0);
    assert_eq!(bob.attach(DOC).unwrap(), 0);
    alice.attach(NOTES).unwrap();

    // Both edit the shared doc. Bob commits against the pre-Alice state,
    // so the server rebases his insert over hers before broadcasting.
    let a = alice
        .commit_with(DOC, |t| {
            let end = t.char_len();
            t.insert_str(end, "[alice was here]")
        })
        .unwrap();
    assert!(matches!(a, CommitOutcome::Committed { seq: 1 }));
    let b = bob
        .commit_with(DOC, |t| {
            let end = t.char_len();
            t.insert_str(end, "[so was bob]")
        })
        .unwrap();
    assert!(matches!(b, CommitOutcome::Committed { seq: 2 }));
    alice
        .commit_with(NOTES, |t| t.insert_str(0, "private note"))
        .unwrap();

    // Drain Alice's pending broadcast of Bob's commit, then compare.
    alice.pump_all(Duration::from_millis(50)).unwrap();
    bob.pump_all(Duration::from_millis(50)).unwrap();
    let doc = alice.mirror(DOC).unwrap().to_string();
    println!("doc after both commits: {doc:?}");
    assert!(doc.contains("[alice was here]") && doc.contains("[so was bob]"));
    assert_eq!(
        alice.state_digest(DOC),
        bob.state_digest(DOC),
        "subscribers must converge bit-identically"
    );
    println!(
        "SESSIONS converged session={DOC} seq={} digest={:016x}",
        alice.seq(DOC).unwrap(),
        alice.state_digest(DOC).unwrap()
    );

    // Scrape the live endpoint while both sessions are still resident.
    let (status, body) = http_get(&net, TELEMETRY_PORT, "/metrics").expect("scrape /metrics");
    let active = body
        .lines()
        .find_map(|l| l.strip_prefix("sm_sessions_active "))
        .and_then(|v| v.trim().parse::<f64>().ok())
        .expect("session gauge exposed");
    let commits = body
        .lines()
        .find_map(|l| l.strip_prefix("sm_session_commits_total "))
        .and_then(|v| v.trim().parse::<f64>().ok())
        .expect("commit counter exposed");
    assert!(status == 200 && active >= 2.0 && commits >= 3.0);
    println!("SESSIONS metrics status={status} active={active} commits={commits}");

    let (status, health) = http_get(&net, TELEMETRY_PORT, "/health").expect("scrape /health");
    assert!(status == 200 && health.contains("\"sessions\""));
    println!("SESSIONS health status={status}");

    telemetry.stop();
    server.shutdown();
    obs::uninstall();
    let _ = std::fs::remove_dir_all(&dir);
    println!("session server example done");
}
