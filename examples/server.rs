//! The paper's **server software** example (listing 3, §II-G): a TCP-style
//! key-value server built from `Spawn`, `Clone`, `Sync` and `MergeAny`.
//!
//! Structure, exactly as in the paper:
//!
//! * the root task owns the global data and loops on `MergeAny` —
//!   connections merge on a first-completed-first-merged basis (explicit,
//!   intentional non-determinism);
//! * an `accept` child task blocks on the listener and `Clone`s a sibling
//!   `conn` task per incoming connection;
//! * each `conn` task first calls `Sync()` to replace its (likely stale)
//!   inherited data with a fresh copy, then serves requests, syncing after
//!   each one; a rejected merge is reported on the socket and aborts the
//!   connection.
//!
//! Protocol (one message per request):
//!   `PUT <key> <value>` → `OK`
//!   `GET <key>`         → `<value>` or `NIL`
//!   `DEL <key>`         → `OK`
//!   `BAD`               → provokes a merge-condition rejection
//!
//! ```text
//! cargo run --example server
//! ```
//!
//! Set `SM_TELEMETRY=1` to additionally run the live telemetry plane:
//! the full recorder stack is installed, an [`ObsServer`] serves
//! `/metrics`, `/flight` and `/health` on port 9600 of the same
//! in-memory network the clients use, and the example self-scrapes all
//! three routes while the server is still up, printing marker lines the
//! CI smoke job greps for.

use std::sync::Arc;

use spawn_merge::net::{Network, Stream};
use spawn_merge::obs::{
    self, http_get, DeterminismAuditor, FlightRecorder, Metrics, MultiRecorder, ObsServer,
    Recorder, TelemetrySources,
};
use spawn_merge::{run, MMap, SyncError, TaskAbort, TaskCtx, TaskResult};

type Db = MMap<String, String>;

const PORT: u16 = 4242;
const CLIENTS: usize = 6;
const FORBIDDEN_KEY: &str = "forbidden";

/// The paper's `conn(socket, data)` function.
fn conn(socket: Stream, ctx: &mut TaskCtx<Db>) -> TaskResult {
    // The inherited data is "most likely outdated": refresh first.
    ctx.sync()?;
    loop {
        let Ok(request) = socket.recv_str() else {
            return Ok(()); // connection closed
        };
        let reply = handle_request(&request, ctx.data_mut());
        match ctx.sync() {
            Ok(()) => {
                let _ = socket.send_str(&reply);
            }
            Err(SyncError::MergeRejected) => {
                // Listing 3: write the error to the socket and abort.
                let _ = socket.send_str("ERR merge rejected");
                return Err(TaskAbort::new("merge rejected"));
            }
            Err(e) => return Err(e.into()),
        }
    }
}

fn handle_request(request: &str, db: &mut Db) -> String {
    let mut parts = request.splitn(3, ' ');
    match (parts.next(), parts.next(), parts.next()) {
        (Some("PUT"), Some(k), Some(v)) => {
            db.insert(k.to_string(), v.to_string());
            "OK".to_string()
        }
        (Some("GET"), Some(k), None) => db
            .get(&k.to_string())
            .cloned()
            .unwrap_or_else(|| "NIL".to_string()),
        (Some("DEL"), Some(k), None) => {
            db.remove(&k.to_string());
            "OK".to_string()
        }
        (Some("BAD"), _, _) => {
            // Writes a key the server's merge condition refuses.
            db.insert(FORBIDDEN_KEY.to_string(), "x".to_string());
            "?".to_string()
        }
        _ => "ERR bad request".to_string(),
    }
}

/// The paper's `accept(data)` task.
fn accept_task(net: Network, ctx: &mut TaskCtx<Db>) -> TaskResult {
    let listener = net
        .listen(PORT)
        .map_err(|e| TaskAbort::new(e.to_string()))?;
    loop {
        if ctx.is_aborted() {
            return Ok(()); // server shutting down
        }
        match listener.accept_timeout(std::time::Duration::from_millis(10)) {
            Ok(socket) => {
                // Clone(conn, socket, data): a sibling task the ROOT merges.
                ctx.clone_task(move |c| conn(socket, c))?;
            }
            Err(spawn_merge::net::NetError::Timeout) => continue,
            Err(_) => return Ok(()),
        }
    }
}

fn client(net: &Network, i: usize) -> std::thread::JoinHandle<Vec<String>> {
    let net = net.clone();
    std::thread::spawn(move || {
        // The accept task may not be listening yet: retry briefly.
        let sock = loop {
            match net.connect(PORT) {
                Ok(s) => break s,
                Err(_) => std::thread::sleep(std::time::Duration::from_millis(5)),
            }
        };
        let mut replies = Vec::new();
        let mut send = |msg: String| {
            sock.send_str(&msg).unwrap();
            let r = sock.recv_str().unwrap();
            replies.push(format!("{msg} -> {r}"));
        };
        send(format!("PUT user:{i} client-{i}"));
        send(format!("GET user:{i}"));
        if i == 0 {
            send("BAD poison".to_string()); // provokes the merge condition
        }
        replies
    })
}

/// Port of the opt-in live telemetry endpoint (`SM_TELEMETRY=1`).
const TELEMETRY_PORT: u16 = 9600;

/// Install the full recorder plane and serve it on `net`.
fn start_telemetry(net: &Network) -> (ObsServer, Arc<Metrics>) {
    let mut sources = TelemetrySources::named("server-example");
    let metrics = Arc::new(Metrics::new());
    sources.metrics = Some(metrics.clone());
    sources.flight = Some(Arc::new(FlightRecorder::default()));
    sources.auditor = Some(Arc::new(DeterminismAuditor::new()));
    let sinks: Vec<Arc<dyn Recorder>> = vec![
        metrics.clone() as Arc<dyn Recorder>,
        sources.flight.clone().unwrap() as Arc<dyn Recorder>,
        sources.auditor.clone().unwrap() as Arc<dyn Recorder>,
    ];
    obs::install(Arc::new(MultiRecorder::new(sinks)));
    let server = ObsServer::start(net, TELEMETRY_PORT, sources).expect("telemetry port free");
    (server, metrics)
}

/// Self-scrape all three routes while the endpoint is live, printing the
/// marker lines the CI smoke job greps for.
fn scrape_telemetry(net: &Network) {
    let (status, metrics) = http_get(net, TELEMETRY_PORT, "/metrics").expect("scrape /metrics");
    let spawned = metrics
        .lines()
        .find_map(|l| l.strip_prefix("sm_tasks_spawned_total "))
        .and_then(|v| v.trim().parse::<f64>().ok())
        .expect("spawned counter exposed");
    let nonzero_phases = metrics
        .lines()
        .filter(|l| {
            l.starts_with("sm_phase_nanos_count{")
                && l.rsplit_once(' ').is_some_and(|(_, v)| v.trim() != "0")
        })
        .count();
    assert!(status == 200 && spawned > 0.0 && nonzero_phases > 0);
    println!("TELEMETRY metrics status={status} spawned={spawned} nonzero_phases={nonzero_phases}");

    let (status, flight) = http_get(net, TELEMETRY_PORT, "/flight").expect("scrape /flight");
    assert!(status == 200 && flight.contains("\"retained\""));
    println!("TELEMETRY flight status={status} bytes={}", flight.len());

    let (status, health) = http_get(net, TELEMETRY_PORT, "/health").expect("scrape /health");
    assert!(status == 200 && health.contains("\"ok\":true") && health.contains("\"digest\""));
    println!("TELEMETRY health status={status} replica=server-example");
}

fn main() {
    let net = Network::new();
    let telemetry = std::env::var("SM_TELEMETRY")
        .is_ok_and(|v| v != "0")
        .then(|| start_telemetry(&net));
    let clients: Vec<_> = (0..CLIENTS).map(|i| client(&net, i)).collect();

    let (db, served) = run(Db::new(), |ctx| {
        let accept_net = net.clone();
        let acceptor = ctx.spawn(move |c| accept_task(accept_net, c));

        // Root loop: MergeAny until every client connection completed.
        // The merge condition guards the database invariant.
        let mut completed_conns = 0;
        while completed_conns < CLIENTS {
            if let Some(merged) =
                ctx.merge_any_with(&|db: &Db| !db.contains_key(&FORBIDDEN_KEY.to_string()))
            {
                if merged.completed && merged.task != acceptor.id() {
                    completed_conns += 1;
                }
            }
        }
        // All clients served: wind the acceptor down.
        acceptor.abort();
        while ctx.merge_any().is_some() {}
        completed_conns
    });

    println!("server handled {served} connections");
    for j in clients {
        for line in j.join().unwrap() {
            println!("  client: {line}");
        }
    }
    println!("final database ({} keys):", db.len());
    for (k, v) in db.iter() {
        println!("  {k} = {v}");
    }
    assert_eq!(db.len(), CLIENTS, "one key per client, poison key rejected");
    assert!(!db.contains_key(&FORBIDDEN_KEY.to_string()));

    // With SM_TELEMETRY on, the endpoint outlives the run: scrape it
    // live, then wind it down.
    if let Some((server, _metrics)) = telemetry {
        scrape_telemetry(&net);
        server.stop();
        obs::uninstall();
    }
}
