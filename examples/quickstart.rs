//! Quickstart: listing 1 of the paper, plus the determinism pitch from the
//! mutex comparison (listing 2).
//!
//! ```text
//! cargo run --example quickstart
//! ```

use spawn_merge::{run, MList};

fn main() {
    // ── Listing 1 ──────────────────────────────────────────────────────
    //   func f(l List) { l.Append(5) }
    //   list := NewList(1,2,3)
    //   t := Spawn(f, list)
    //   list.Append(4)
    //   MergeAllFromSet(t)
    //   Print(list)
    let (list, ()) = run(MList::from_iter([1, 2, 3]), |ctx| {
        let t = ctx.spawn(|child| {
            child.data_mut().push(5); // runs on the child's own copy
            Ok(())
        });
        ctx.data_mut().push(4); // concurrently, on the parent's copy
        ctx.merge_all_from_set(&[&t]); // deterministic merge
    });
    println!("listing 1 result: {:?}", list.to_vec());
    assert_eq!(list.to_vec(), vec![1, 2, 3, 4, 5]);

    // ── Why this matters ───────────────────────────────────────────────
    // The mutex version of this program (listing 2 in the paper) may print
    // [1,2,3,4,5] or [1,2,3,5,4] depending on scheduling. Here the answer
    // is a function of the program text alone. Run the race 100 times with
    // adversarial sleeps on both sides and the answer never changes:
    let mut results = std::collections::BTreeSet::new();
    for round in 0..100u64 {
        let (list, ()) = run(MList::from_iter([1, 2, 3]), |ctx| {
            let t = ctx.spawn(move |child| {
                std::thread::sleep(std::time::Duration::from_micros(round % 7 * 50));
                child.data_mut().push(5);
                Ok(())
            });
            std::thread::sleep(std::time::Duration::from_micros((round * 31) % 7 * 50));
            ctx.data_mut().push(4);
            ctx.merge_all_from_set(&[&t]);
        });
        results.insert(list.to_vec());
    }
    println!(
        "distinct outcomes over 100 adversarial runs: {}",
        results.len()
    );
    assert_eq!(results.len(), 1, "deterministic by construction");
    println!("OK: spawn/merge is deterministic regardless of timing");
}
