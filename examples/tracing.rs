//! Runtime observability demo: record a full Spawn & Merge run with
//! `sm_obs` and export it as a Chrome trace-event / Perfetto timeline
//! plus a metrics snapshot.
//!
//! ```text
//! cargo run --release --example tracing
//! ```
//!
//! The run drives the paper's network simulation (listing 4) with four
//! recorders installed at once: a [`ChromeTracer`] (timeline), a
//! [`Metrics`] aggregator (counters + histograms), a
//! [`DeterminismAuditor`] (content hash of the deterministic event
//! stream), and a [`FlightRecorder`] black box with an anomaly dump
//! directory armed. The trace JSON is validated by round-tripping it
//! through a parser before it is written; afterwards a second, tiny run
//! provokes a merge rejection to show the flight recorder dumping its
//! rings to disk on its own.

use std::sync::Arc;

use spawn_merge::netsim::{run_spawn_merge, Routing, SimConfig};
use spawn_merge::obs::{
    self, ChromeTracer, DeterminismAuditor, FlightRecorder, Metrics, MultiRecorder,
};
use spawn_merge::sha1::to_hex;
use spawn_merge::{run, MCounter};

fn main() {
    let tracer = Arc::new(ChromeTracer::new());
    let metrics = Arc::new(Metrics::new());
    let auditor = Arc::new(DeterminismAuditor::new());
    std::fs::create_dir_all("target").ok();
    let anomaly_dir = "target/tracing-example-anomalies";
    let _ = std::fs::remove_dir_all(anomaly_dir);
    let flight = Arc::new(FlightRecorder::default().with_anomaly_dir(anomaly_dir));
    obs::install(Arc::new(MultiRecorder::new(vec![
        tracer.clone(),
        metrics.clone(),
        auditor.clone(),
        flight.clone(),
    ])));

    // A scaled-down deterministic simulation: every run of this program
    // produces the same fingerprint AND the same auditor digest.
    let cfg = SimConfig {
        hosts: 6,
        initial_messages: 18,
        ttl: 12,
        workload: 20,
        routing: Routing::HashDerived,
        ..SimConfig::default()
    };
    let result = run_spawn_merge(&cfg);

    // The flight recorder's reason to exist: when an anomaly strikes,
    // the black box dumps its rings without anyone asking. Provoke a
    // merge rejection (a child violating the parent's merge condition)
    // and watch the dump land.
    let (_, ()) = run(MCounter::new(0), |ctx| {
        ctx.spawn(|child| {
            child.data_mut().add(50); // violates the condition below
            let _ = child.sync(); // rejected -> MergeRejected anomaly
            child.data_mut().add(-45);
            child.sync()?;
            Ok(())
        });
        ctx.merge_all_with(&|d: &MCounter| d.get() < 10);
        ctx.merge_all();
        ctx.merge_all();
    });
    obs::uninstall();

    assert!(
        flight.anomaly_dump_count() >= 1,
        "the rejection must auto-dump the flight rings"
    );
    let dump_files: Vec<_> = std::fs::read_dir(anomaly_dir)
        .expect("anomaly dir")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    println!(
        "flight recorder    : {} events in rings, anomaly auto-dump -> {}",
        flight.recorded(),
        dump_files[0].display()
    );

    println!(
        "simulated {} hosts / {} hops in {:?} over {} merge rounds",
        cfg.hosts, result.total_processed, result.elapsed, result.rounds
    );
    println!("result fingerprint : {}", to_hex(&result.fingerprint));
    println!("determinism digest : {:016x}", auditor.digest());

    // Validate the trace before writing: it must round-trip through a
    // JSON parser and look like a Chrome trace-event document.
    let trace = tracer.json_string();
    let doc = obs::json::parse(&trace).expect("exported trace must be valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(|e| e.as_arr())
        .expect("trace must contain a traceEvents array");
    assert!(!events.is_empty(), "trace must contain events");
    println!(
        "trace events       : {} (validated by JSON round-trip)",
        events.len()
    );

    let trace_path = "target/tracing-example.trace.json";
    let metrics_path = "target/tracing-example.metrics.json";
    std::fs::create_dir_all("target").ok();
    std::fs::write(trace_path, &trace).expect("write trace");
    std::fs::write(metrics_path, metrics.json_string()).expect("write metrics");

    let snapshot = metrics.snapshot();
    println!(
        "metrics            : {} spawns, {} merges, {} ops transformed, mean merge {:.1} µs",
        snapshot.tasks_spawned,
        snapshot.merges_finished,
        snapshot.ops_child_total,
        snapshot.merge_latency_nanos.mean() / 1000.0
    );

    println!("\nwrote {trace_path}");
    println!("wrote {metrics_path}");
    println!("\nTo view the timeline, open https://ui.perfetto.dev (or");
    println!("chrome://tracing) and load {trace_path}:");
    println!("one track per task, merge spans annotated with their OT op counts.");
}
