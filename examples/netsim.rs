//! The paper's **simulation software** example (listing 4, §II-H): a
//! message-passing network of hosts, run through all four evaluation
//! setups, demonstrating the headline claim — with Spawn & Merge even the
//! "non-deterministic" simulation content produces identical results on
//! every run, while the conventional implementation's results depend on
//! thread timing.
//!
//! ```text
//! cargo run --release --example netsim
//! ```

use spawn_merge::netsim::{run_setup, Routing, Setup, SimConfig};
use spawn_merge::sha1::to_hex;

fn main() {
    // A scaled-down configuration so the example finishes in seconds; the
    // full 20/100/100 evaluation lives in `sm-bench --bin figure3`.
    let cfg = SimConfig {
        hosts: 8,
        initial_messages: 32,
        ttl: 24,
        workload: 50,
        routing: Routing::HashDerived,
        ..SimConfig::default()
    };
    println!(
        "simulating {} hosts, {} messages, TTL {}, workload {} SHA-1 iterations\n",
        cfg.hosts, cfg.initial_messages, cfg.ttl, cfg.workload
    );

    const RUNS: usize = 5;
    for setup in Setup::ALL {
        let mut fingerprints = std::collections::BTreeSet::new();
        let mut elapsed_total = std::time::Duration::ZERO;
        for _ in 0..RUNS {
            let r = run_setup(setup, &cfg);
            assert_eq!(r.total_processed, cfg.expected_hops());
            fingerprints.insert(to_hex(&r.fingerprint));
            elapsed_total += r.elapsed;
        }
        let deterministic = fingerprints.len() == 1;
        println!(
            "{:<28} {} distinct outcome(s) over {} runs — {:<18} avg {:>7.1?}",
            setup.label(),
            fingerprints.len(),
            RUNS,
            if deterministic {
                "deterministic"
            } else {
                "NON-deterministic"
            },
            elapsed_total / RUNS as u32,
        );
        match setup {
            // Spawn & Merge setups must always be deterministic.
            Setup::SpawnMergeDet | Setup::SpawnMergeNonDet => assert!(deterministic),
            // The conventional ring variant is deterministic by topology.
            Setup::ConventionalDet => assert!(deterministic),
            // Hash routing + locks may (and usually does) vary run-to-run;
            // no assertion — non-determinism is not guaranteed, only
            // permitted, which is exactly the problem the paper attacks.
            Setup::ConventionalNonDet => {}
        }
    }

    println!("\nThe Spawn & Merge rows are the paper's point: same program shape,");
    println!("same hash-derived routing, but MergeAll serializes every round —");
    println!("one outcome, every run, on any number of cores.");
}
