//! The §IV-A construction: a counting semaphore modelled with nothing but
//! Spawn, Merge and Sync — the paper's expressive-power equivalence proof,
//! executable.
//!
//! Also demonstrates the §IV-B result: a *deadlocked* semaphore system
//! degrades to a detectable empty-merge-set state instead of a real
//! deadlock.
//!
//! ```text
//! cargo run --example semaphore
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use spawn_merge::core::semaphore::run_with_semaphore;

fn main() {
    // ── Mutual exclusion ───────────────────────────────────────────────
    const WORKERS: usize = 6;
    const ROUNDS: usize = 5;
    const PERMITS: i64 = 2;

    let in_critical = Arc::new(AtomicUsize::new(0));
    let max_seen = Arc::new(AtomicUsize::new(0));
    let ic = Arc::clone(&in_critical);
    let ms = Arc::clone(&max_seen);

    let outcome = run_with_semaphore(PERMITS, WORKERS, move |idx, sem| {
        for round in 0..ROUNDS {
            sem.acquire()?;
            // Critical section: at most PERMITS workers in here at once.
            let now = ic.fetch_add(1, Ordering::SeqCst) + 1;
            ms.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_micros(200 + (idx * round) as u64));
            ic.fetch_sub(1, Ordering::SeqCst);
            sem.release()?;
        }
        Ok(())
    });

    println!("semaphore with {PERMITS} permits, {WORKERS} workers × {ROUNDS} rounds:");
    println!("  grants handed out : {}", outcome.grants);
    println!("  max concurrently  : {}", max_seen.load(Ordering::SeqCst));
    println!("  final value       : {}", outcome.final_value);
    println!("  deadlocked        : {}", outcome.deadlocked);
    assert_eq!(outcome.grants, (WORKERS * ROUNDS) as u64);
    assert!(max_seen.load(Ordering::SeqCst) <= PERMITS as usize);
    assert_eq!(outcome.final_value, PERMITS);
    assert!(!outcome.deadlocked);

    // ── Deadlock degradation (§IV-B) ───────────────────────────────────
    // Zero permits: every worker blocks forever in its second Sync. In a
    // lock-based system this is a hard deadlock; here the manager's merge
    // set S empties out and the state is *detected*.
    let outcome = run_with_semaphore(0, 3, |_idx, sem| {
        sem.acquire()?; // can never be granted
        Ok(())
    });
    println!("\nzero-permit semaphore with 3 workers:");
    println!("  deadlocked        : {}", outcome.deadlocked);
    println!("  stranded workers  : {}", outcome.stranded_workers);
    assert!(outcome.deadlocked);
    assert_eq!(outcome.stranded_workers, 3);
    println!("  → the Spawn & Merge system detected the empty merge set and unwound");
}
