//! End-to-end determinism: the central claim of the paper. Programs built
//! on Spawn & Merge with deterministic merge functions must produce
//! bit-identical results on every run, regardless of scheduling, timing
//! jitter, or contention.

use spawn_merge::{run, MCounter, MList, MMap, MText};

/// Heavily contended list mutations with adversarial sleeps: the result
/// must never vary.
#[test]
fn contended_list_inserts_are_deterministic() {
    let run_once = |salt: u64| {
        let (list, ()) = run(MList::<u64>::new(), |ctx| {
            for i in 0..12u64 {
                ctx.spawn(move |c| {
                    std::thread::sleep(std::time::Duration::from_micros((i * salt * 13) % 400));
                    c.data_mut().insert(0, i);
                    c.data_mut().push(100 + i);
                    Ok(())
                });
            }
            ctx.merge_all();
        });
        list.to_vec()
    };
    let baseline = run_once(1);
    for salt in 2..8 {
        assert_eq!(run_once(salt), baseline, "salt {salt} changed the outcome");
    }
}

#[test]
fn text_merge_is_deterministic() {
    let run_once = || {
        let (doc, ()) = run(MText::from("0123456789"), |ctx| {
            for i in 0..6usize {
                ctx.spawn(move |c| {
                    c.data_mut().insert_str(i, format!("<{i}>"));
                    c.data_mut().delete_range(0, 1);
                    Ok(())
                });
            }
            ctx.merge_all();
        });
        doc.to_string()
    };
    let baseline = run_once();
    for _ in 0..8 {
        assert_eq!(run_once(), baseline);
    }
}

#[test]
fn map_conflicts_resolve_identically_every_run() {
    let run_once = || {
        let (map, ()) = run(MMap::<String, u64>::new(), |ctx| {
            for i in 0..8u64 {
                ctx.spawn(move |c| {
                    // Everyone fights over "winner"; each also writes a
                    // private key.
                    c.data_mut().insert("winner".into(), i);
                    c.data_mut().insert(format!("k{i}"), i);
                    Ok(())
                });
            }
            ctx.merge_all();
        });
        map.iter().map(|(k, v)| (k.clone(), *v)).collect::<Vec<_>>()
    };
    let baseline = run_once();
    assert_eq!(
        baseline.iter().find(|(k, _)| k == "winner").unwrap().1,
        7,
        "last merged wins"
    );
    for _ in 0..8 {
        assert_eq!(run_once(), baseline);
    }
}

/// Multi-round sync programs: intermediate merges happen in deterministic
/// rounds, so round-local observations are reproducible too.
#[test]
fn sync_rounds_are_deterministic() {
    let run_once = || {
        let (list, trace) = run(MList::<i64>::new(), |ctx| {
            for i in 0..4i64 {
                ctx.spawn(move |c| {
                    for round in 0..3i64 {
                        c.data_mut().push(i * 10 + round);
                        c.sync()?;
                    }
                    Ok(())
                });
            }
            let mut trace = Vec::new();
            // 3 sync rounds + 1 completion round.
            for _ in 0..4 {
                ctx.merge_all();
                trace.push(ctx.data().to_vec());
            }
            trace
        });
        (list.to_vec(), trace)
    };
    let baseline = run_once();
    for _ in 0..6 {
        assert_eq!(run_once(), baseline);
    }
    // All 12 pushes survive.
    assert_eq!(baseline.0.len(), 12);
}

/// Determinism is independent of how many worker threads exist: warm pools
/// of different sizes must not change anything.
#[test]
fn result_is_independent_of_pool_warmth() {
    use spawn_merge::{run_with_pool, Pool};
    let program = |pool: Pool| {
        let (c, ()) = run_with_pool(MCounter::new(0), pool, |ctx| {
            for i in 0..16i64 {
                ctx.spawn(move |c| {
                    c.data_mut().add(i);
                    Ok(())
                });
            }
            ctx.merge_all();
        });
        c.get()
    };
    let cold = program(Pool::new());
    let warm_pool = Pool::new();
    // Pre-warm with dummy jobs.
    for _ in 0..32 {
        warm_pool.execute(|| {});
    }
    std::thread::sleep(std::time::Duration::from_millis(20));
    let warm = program(warm_pool);
    assert_eq!(cold, warm);
    assert_eq!(cold, (0..16).sum::<i64>());
}

/// Nested task trees: grandchildren merge into children deterministically
/// before children merge into the root.
#[test]
fn nested_tree_determinism() {
    let run_once = || {
        let (list, ()) = run(MList::<u32>::new(), |ctx| {
            for i in 0..3u32 {
                ctx.spawn(move |child| {
                    for j in 0..3u32 {
                        child.spawn(move |gc| {
                            gc.data_mut().push(i * 10 + j);
                            Ok(())
                        });
                    }
                    child.merge_all();
                    child.data_mut().push(i * 10 + 9);
                    Ok(())
                });
            }
            ctx.merge_all();
        });
        list.to_vec()
    };
    let baseline = run_once();
    assert_eq!(
        baseline,
        vec![0, 1, 2, 9, 10, 11, 12, 19, 20, 21, 22, 29],
        "creation-order merging at every level"
    );
    for _ in 0..6 {
        assert_eq!(run_once(), baseline);
    }
}
