//! The observability layer's contract with the runtime:
//!
//! 1. **Passivity** — installing a recorder must never change merged
//!    results. The event stream is a projection of the run, not an input
//!    to it.
//! 2. **Determinism auditing** — for a deterministic (merge_all-only)
//!    program, the auditor digest is identical on every run, while the
//!    digest still reacts to genuine behavioural differences.
//! 3. **Robust lifecycle** — recorders can be installed, swapped, and
//!    removed concurrently with a running program without panics or lost
//!    events (for sinks that stay installed throughout).
//!
//! The recorder slot is process-global, so every test here serializes on
//! one mutex; other test binaries never install recorders.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use spawn_merge::netsim::{run_spawn_merge, Routing, SimConfig};
use spawn_merge::obs::{
    self, ChromeTracer, DeterminismAuditor, Metrics, MultiRecorder, ObsEvent, Phase, Recorder,
    TaskPath,
};
use spawn_merge::{run, run_with_store, FsyncPolicy, MList, Pool, Store, StoreOptions};

/// All tests share the process-wide recorder slot; run them one at a time.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(PoisonError::into_inner)
}

fn sim_config() -> SimConfig {
    SimConfig {
        hosts: 4,
        initial_messages: 12,
        ttl: 6,
        workload: 10,
        routing: Routing::HashDerived,
        ..SimConfig::default()
    }
}

/// The paper's merge_all-only network simulation, with the full recorder
/// stack installed, must yield the same auditor digest on every run —
/// and the same simulation fingerprint as an uninstrumented run.
#[test]
fn auditor_digest_is_stable_across_runs() {
    let _guard = serial();
    let cfg = sim_config();

    // Baseline: no recorder installed at all.
    obs::uninstall();
    let baseline = run_spawn_merge(&cfg);

    let mut digests = Vec::new();
    for run_no in 0..3 {
        let auditor = Arc::new(DeterminismAuditor::new());
        obs::install(auditor.clone());
        let result = run_spawn_merge(&cfg);
        obs::uninstall();
        assert_eq!(
            result.fingerprint, baseline.fingerprint,
            "run {run_no}: installing a recorder changed the simulation result"
        );
        assert!(
            auditor.chain_count() > 0,
            "run {run_no}: auditor saw no events"
        );
        digests.push(auditor.digest());
    }
    assert_eq!(
        digests[0], digests[1],
        "digest differed between runs 0 and 1"
    );
    assert_eq!(
        digests[1], digests[2],
        "digest differed between runs 1 and 2"
    );
}

/// The digest must not be a constant: a program doing different merges
/// hashes differently.
#[test]
fn auditor_digest_reacts_to_different_programs() {
    let _guard = serial();

    let digest_of = |children: u64| {
        let auditor = Arc::new(DeterminismAuditor::new());
        obs::install(auditor.clone());
        let (_, ()) = run(MList::<u64>::new(), |ctx| {
            for i in 0..children {
                ctx.spawn(move |c| {
                    c.data_mut().push(i);
                    Ok(())
                });
            }
            ctx.merge_all();
        });
        obs::uninstall();
        auditor.digest()
    };

    assert_ne!(
        digest_of(2),
        digest_of(3),
        "different programs must hash differently"
    );
}

/// A recorder observing a contended run is passive: results match the
/// uninstrumented baseline bit for bit, and the Chrome export of the run
/// round-trips through a JSON parser.
#[test]
fn recorder_is_passive_and_trace_round_trips() {
    let _guard = serial();

    let run_once = || {
        let (list, ()) = run(MList::<u64>::new(), |ctx| {
            for i in 0..8u64 {
                ctx.spawn(move |c| {
                    std::thread::sleep(std::time::Duration::from_micros(i * 37 % 200));
                    c.data_mut().insert(0, i);
                    Ok(())
                });
            }
            ctx.merge_all();
        });
        list.to_vec()
    };

    obs::uninstall();
    let baseline = run_once();

    let tracer = Arc::new(ChromeTracer::new());
    let metrics = Arc::new(Metrics::new());
    obs::install(Arc::new(MultiRecorder::new(vec![
        tracer.clone(),
        metrics.clone(),
    ])));
    let observed = run_once();
    obs::uninstall();

    assert_eq!(
        observed, baseline,
        "recorder must not change the merged result"
    );

    let snapshot = metrics.snapshot();
    assert_eq!(snapshot.tasks_spawned, 9, "root + 8 children");
    assert_eq!(snapshot.merges_finished, 8, "merge_all folds 8 children");

    // The exported trace is valid JSON in Chrome trace-event shape.
    let trace = tracer.json_string();
    let doc = obs::json::parse(&trace).expect("trace must parse as JSON");
    let events = doc
        .get("traceEvents")
        .and_then(|e| e.as_arr())
        .expect("trace must have a traceEvents array");
    assert!(!events.is_empty());
    for ev in events {
        assert!(
            ev.get("ph").and_then(|p| p.as_str()).is_some(),
            "event missing phase"
        );
        assert!(
            ev.get("pid").and_then(|p| p.as_num()).is_some(),
            "event missing pid"
        );
        assert!(
            ev.get("name").and_then(|n| n.as_str()).is_some(),
            "event missing name"
        );
    }
}

/// A sink that stays installed across every swap misses nothing: swap the
/// recorder stack around it as fast as possible while tasks spawn and
/// merge, and the final MergeFinished count is still exact.
#[test]
fn swapping_recorders_mid_run_loses_no_events() {
    let _guard = serial();

    struct Null;
    impl Recorder for Null {
        fn record(&self, _event: &ObsEvent) {}
    }

    let metrics = Arc::new(Metrics::new());
    obs::install(metrics.clone());

    let stop = Arc::new(AtomicBool::new(false));
    let churner = {
        let metrics = Arc::clone(&metrics);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut swaps = 0u64;
            while !stop.load(Ordering::Relaxed) {
                // Alternate between two stacks that BOTH contain `metrics`:
                // every event lands in it no matter when the swap happens.
                let extra: Arc<dyn Recorder> = Arc::new(Null);
                obs::install(Arc::new(MultiRecorder::new(vec![metrics.clone(), extra])));
                obs::install(metrics.clone());
                swaps += 2;
            }
            swaps
        })
    };

    const CHILDREN: u64 = 24;
    let (list, ()) = run(MList::<u64>::new(), |ctx| {
        for i in 0..CHILDREN {
            ctx.spawn(move |c| {
                std::thread::sleep(std::time::Duration::from_micros(i * 53 % 300));
                c.data_mut().push(i);
                Ok(())
            });
        }
        ctx.merge_all();
    });

    stop.store(true, Ordering::Relaxed);
    let swaps = churner.join().expect("churner must not panic");
    obs::uninstall();

    assert!(swaps > 0, "churner never ran");
    assert_eq!(list.len(), CHILDREN as usize);
    let snapshot = metrics.snapshot();
    assert_eq!(
        snapshot.merges_finished, CHILDREN,
        "a permanently-installed sink lost MergeFinished events across {swaps} swaps"
    );
    assert_eq!(snapshot.tasks_spawned, CHILDREN + 1);
}

/// Full install/uninstall churn (including windows with NO recorder) must
/// never panic or perturb results — only observation coverage changes.
#[test]
fn install_uninstall_churn_is_harmless() {
    let _guard = serial();

    struct Counting(AtomicU64);
    impl Recorder for Counting {
        fn record(&self, _event: &ObsEvent) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }

    obs::uninstall();
    let baseline = {
        let (list, ()) = run(MList::<u64>::new(), |ctx| {
            for i in 0..16u64 {
                ctx.spawn(move |c| {
                    c.data_mut().push(i);
                    Ok(())
                });
            }
            ctx.merge_all();
        });
        list.to_vec()
    };

    let stop = Arc::new(AtomicBool::new(false));
    let churner = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                obs::install(Arc::new(Counting(AtomicU64::new(0))));
                obs::uninstall();
            }
        })
    };

    for _ in 0..4 {
        let (list, ()) = run(MList::<u64>::new(), |ctx| {
            for i in 0..16u64 {
                ctx.spawn(move |c| {
                    c.data_mut().push(i);
                    Ok(())
                });
            }
            ctx.merge_all();
        });
        assert_eq!(
            list.to_vec(),
            baseline,
            "recorder churn changed a merged result"
        );
    }

    stop.store(true, Ordering::Relaxed);
    churner.join().expect("churner must not panic");
    obs::uninstall();
}

/// A deterministic store-backed workload in a fresh scratch directory.
fn store_run(tag: &str, options: StoreOptions) -> (Store, MList<u64>) {
    let dir = std::env::temp_dir().join(format!("sm-obs-store-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Store::open(dir, options).unwrap();
    let (list, ()) = run_with_store(MList::<u64>::new(), Pool::new(), &store, |ctx| {
        for i in 0..6u64 {
            ctx.spawn(move |c| {
                c.data_mut().push(i * 3);
                Ok(())
            });
        }
        ctx.merge_all();
    })
    .unwrap();
    (store, list)
}

/// Store telemetry lands in [`Metrics`] and on the Chrome trace's
/// dedicated store track — while the determinism auditor excludes it, so
/// durability configuration (fsync cadence, snapshots, recovery) can
/// never perturb the audited digest.
#[test]
fn store_events_reach_metrics_and_chrome_but_not_the_auditor() {
    let _guard = serial();

    let tracer = Arc::new(ChromeTracer::new());
    let metrics = Arc::new(Metrics::new());
    obs::install(Arc::new(MultiRecorder::new(vec![
        tracer.clone(),
        metrics.clone(),
    ])));
    let (store, list) = store_run(
        "metrics",
        StoreOptions {
            fsync: FsyncPolicy::Always,
            ..StoreOptions::default()
        },
    );
    store.snapshot(&list).unwrap();
    let reopened = Store::open(store.dir(), StoreOptions::default()).unwrap();
    let recovered = reopened.recover::<MList<u64>>().unwrap().expect("journal");
    obs::uninstall();
    assert_eq!(recovered.data.to_vec(), list.to_vec());

    let snap = metrics.snapshot();
    assert!(snap.wal_appends >= 6, "one WAL append per merge commit");
    assert!(snap.wal_bytes > 0);
    assert!(
        snap.wal_fsyncs >= 6,
        "FsyncPolicy::Always syncs every append"
    );
    assert!(snap.snapshots >= 2, "genesis + explicit snapshot");
    assert!(snap.snapshot_bytes > 0);
    assert_eq!(snap.recoveries, 1);
    assert_eq!(snap.recovery_replayed_ops, 0, "snapshot covered the log");

    let prom = metrics.prometheus_text();
    assert!(prom.contains("sm_wal_appends_total"));
    assert!(prom.contains("sm_recoveries_total"));

    let trace = tracer.json_string();
    let doc = obs::json::parse(&trace).expect("trace must parse as JSON");
    let events = doc
        .get("traceEvents")
        .and_then(|e| e.as_arr())
        .expect("traceEvents array");
    let store_names: Vec<&str> = events
        .iter()
        .filter(|e| e.get("pid").and_then(|p| p.as_num()) == Some(4.0))
        .filter_map(|e| e.get("name").and_then(|n| n.as_str()))
        .collect();
    assert!(
        store_names.iter().any(|n| n.starts_with("wal append")),
        "expected WAL appends on the store track, saw {store_names:?}"
    );
    assert!(
        store_names.iter().any(|n| n.starts_with("snapshot")),
        "expected a snapshot span on the store track, saw {store_names:?}"
    );
}

/// The durability pipeline added for segment-parallel recovery — delta
/// snapshots, segment retention, and the parallel segment scan — reports
/// through [`Metrics`]: dedicated counters, byte totals, and phase
/// timers, all scrapeable from the Prometheus exposition.
#[test]
fn durability_pipeline_counters_and_phase_timers_reach_metrics() {
    let _guard = serial();

    let metrics = Arc::new(Metrics::new());
    obs::install(metrics.clone());

    let dir = std::env::temp_dir().join(format!("sm-obs-store-{}-durability", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let options = StoreOptions {
        fsync: FsyncPolicy::EveryN(4),
        segment_bytes: 512,
        snapshot_every_ops: 25,
        delta_snapshots: true,
        full_snapshot_every: 1000,
        ..StoreOptions::default()
    };
    let store = Store::open(&dir, options.clone()).unwrap();
    let mut data = MList::<u64>::new();
    store.begin(&data).unwrap();
    for i in 0..200u64 {
        data.push(i);
        if i % 5 == 4 {
            store.commit(&data, &TaskPath::root()).unwrap();
        }
    }
    // An explicit snapshot is always full; under PruneCovered it retires
    // the covered segments and the now-superseded deltas.
    store.snapshot(&data).unwrap();
    store.sync().unwrap();

    let reopened = Store::open(&dir, options).unwrap();
    let recovered = reopened.recover::<MList<u64>>().unwrap().expect("journal");
    obs::uninstall();
    assert_eq!(recovered.data.to_vec(), data.to_vec());

    let snap = metrics.snapshot();
    assert!(
        snap.snapshot_deltas >= 1,
        "automatic deltas must have fired"
    );
    assert!(snap.snapshot_delta_bytes > 0);
    assert!(
        snap.wal_segments_pruned >= 1,
        "the explicit full snapshot must have pruned covered segments"
    );
    assert!(
        snap.recovery_segments_parallel >= 1,
        "recovery must report the segments it scanned"
    );
    assert!(snap.phase_nanos.get(Phase::SnapshotDelta).count() >= 1);
    assert!(snap.phase_nanos.get(Phase::RecoveryDecode).count() >= 1);
    assert!(snap.phase_nanos.get(Phase::RecoveryApply).count() >= 1);

    let prom = metrics.prometheus_text();
    for name in [
        "sm_snapshot_deltas_total",
        "sm_snapshot_delta_bytes_total",
        "sm_wal_segments_pruned_total",
        "sm_recovery_segments_parallel_total",
    ] {
        assert!(prom.contains(name), "missing {name} in exposition");
    }
}

/// Two runs of the same program under *different* durability settings
/// produce the identical audit digest: the store's events are projected
/// out, and journaling itself never alters merge behaviour.
#[test]
fn audit_digest_ignores_durability_configuration() {
    let _guard = serial();

    let digest_of = |tag: &str, options: StoreOptions| {
        let auditor = Arc::new(DeterminismAuditor::new());
        obs::install(auditor.clone());
        let (store, list) = store_run(tag, options);
        store.wait_snapshots();
        obs::uninstall();
        (auditor.digest(), list.to_vec())
    };

    let (digest_always, state_always) = digest_of(
        "always",
        StoreOptions {
            fsync: FsyncPolicy::Always,
            ..StoreOptions::default()
        },
    );
    let (digest_batched, state_batched) = digest_of(
        "batched",
        StoreOptions {
            fsync: FsyncPolicy::EveryN(3),
            ..StoreOptions::default()
        },
    );
    let (digest_durable, state_durable) = digest_of(
        "durable",
        StoreOptions {
            fsync: FsyncPolicy::EveryN(3),
            snapshot_every_ops: 4,
            snapshot_in_background: true,
            delta_snapshots: true,
            full_snapshot_every: 2,
            ..StoreOptions::default()
        },
    );
    assert_eq!(state_always, state_batched);
    assert_eq!(state_always, state_durable);
    assert_eq!(
        digest_always, digest_batched,
        "fsync policy must be invisible to the determinism auditor"
    );
    assert_eq!(
        digest_always, digest_durable,
        "background and delta snapshots must be invisible to the auditor"
    );
}
