//! Differential suite for the O(m+n) delta (sorted span-set) rebase path:
//! on every pure-sequence log pair it must be *effect-identical* to the
//! pairwise transformation-grid oracle — the same final Rope/ChunkTree
//! state. (Log-level equality — even up to delta normalization — is
//! deliberately not required: when a committed delete makes two
//! previously-separated child edits adjacent, the grid anchors the child
//! insert by the child's incidental log order of those non-adjacent ops,
//! while the delta path anchors by base order. Both choices yield this
//! merge's state; they differ only in which side of the collapsed gap a
//! *future* concurrent insert would land on, and each path is
//! deterministic about its choice.)
//!
//! Also pinned here: the deterministic insert-tie ordering the linear
//! sweep must reproduce bit for bit, degenerate/empty-delta cases, the
//! `ListOp::Set` grid fallback, and the release-floor speedup of the
//! scattered 100×100 merge the delta path exists for.

use std::time::Instant;

use proptest::prelude::*;
use spawn_merge::netsim::workload::lcg_positions;
use spawn_merge::ot::apply_all;
use spawn_merge::ot::delta::{from_ops, rebase_delta, DeltaOp};
use spawn_merge::ot::list::ListOp;
use spawn_merge::ot::seq::rebase;
use spawn_merge::ot::state::{ChunkTree, Rope};
use spawn_merge::ot::text::TextOp;
use spawn_merge::{run, MList, MText};

/// The core equivalence: whenever the delta path accepts a log pair it
/// must reach the same state from `base` as the grid oracle. A `None`
/// from `rebase_delta` on pure sequence logs is the declared
/// order-sensitive fallback (an incoming insert colliding with a later
/// committed insert across an incoming-owned deleted gap — a
/// configuration where the grid's own answer depends on incoming log
/// sequencing the delta normal form erases), and is itself correct: the
/// merge then runs on the grid.
fn assert_delta_grid_equiv<O>(base: &O::State, committed: &[O], incoming: &[O])
where
    O: DeltaOp,
    O::State: Clone + PartialEq + std::fmt::Debug,
{
    let grid_log = rebase(incoming, committed);
    let Some((delta_log, stats)) = rebase_delta(incoming, committed) else {
        return;
    };

    let mut via_grid = base.clone();
    apply_all(&mut via_grid, committed).unwrap();
    apply_all(&mut via_grid, &grid_log).unwrap();

    let mut via_delta = base.clone();
    apply_all(&mut via_delta, committed).unwrap();
    apply_all(&mut via_delta, &delta_log).unwrap();

    assert_eq!(
        via_grid, via_delta,
        "delta and grid rebase diverged in state\n  committed: {committed:?}\n  incoming: {incoming:?}"
    );
    // The linear sweep's work is bounded by the logs it was given: a
    // normalized delta has at most two spans (retain + edit) per op, plus
    // the trailing-retain trim.
    assert!(stats.incoming_spans <= 2 * incoming.len() + 1);
    assert!(stats.committed_spans <= 2 * committed.len() + 1);
}

// ---------------------------------------------------------------------
// explicit tie-ordering and degenerate cases
// ---------------------------------------------------------------------

#[test]
fn insert_tie_committed_side_wins() {
    // Both sides insert at the same position: the committed (left) insert
    // keeps its place, the incoming one is displaced after it — on both
    // paths, for both algebras.
    let base: ChunkTree<u8> = (0..4).collect();
    let committed = vec![ListOp::Insert(2, 50u8)];
    let incoming = vec![ListOp::Insert(2, 60u8)];
    let (delta_log, _) = rebase_delta(&incoming, &committed).unwrap();
    assert_eq!(delta_log, vec![ListOp::Insert(3, 60)]);
    assert_eq!(delta_log, rebase(&incoming, &committed));
    assert_delta_grid_equiv(&base, &committed, &incoming);

    let committed = vec![TextOp::insert(1, "LL")];
    let incoming = vec![TextOp::insert(1, "R")];
    let (delta_log, _) = rebase_delta(&incoming, &committed).unwrap();
    assert_eq!(delta_log, vec![TextOp::insert(3, "R")]);
    assert_delta_grid_equiv(&Rope::from("abcd"), &committed, &incoming);
}

#[test]
fn insert_tie_chains_preserve_relative_order() {
    // Several same-position inserts on each side: committed block first,
    // then the incoming block, each in log order.
    let base: ChunkTree<u8> = (0..2).collect();
    let committed = vec![ListOp::Insert(1, 10u8), ListOp::Insert(1, 11)];
    let incoming = vec![ListOp::Insert(1, 20u8), ListOp::Insert(1, 21)];
    assert_delta_grid_equiv(&base, &committed, &incoming);

    let mut s = base.clone();
    apply_all(&mut s, &committed).unwrap();
    let (delta_log, _) = rebase_delta(&incoming, &committed).unwrap();
    apply_all(&mut s, &delta_log).unwrap();
    assert_eq!(s, vec![0, 11, 10, 21, 20, 1]);
}

#[test]
fn insert_into_concurrently_deleted_range_lands_at_delete_point() {
    let base = Rope::from("abcdefgh");
    let committed = vec![TextOp::delete(2, 4)]; // deletes "cdef"
    let incoming = vec![TextOp::insert(4, "XY")]; // inside the deleted range
    let (delta_log, _) = rebase_delta(&incoming, &committed).unwrap();
    assert_eq!(delta_log, vec![TextOp::insert(2, "XY")]);
    assert_delta_grid_equiv(&base, &committed, &incoming);
}

#[test]
fn delete_splits_around_concurrent_insert() {
    let base: ChunkTree<u8> = (0..8).collect();
    let committed = vec![ListOp::InsertRun(4, vec![90u8, 91])];
    let incoming = vec![ListOp::DeleteRange(2, 5)];
    let (delta_log, _) = rebase_delta(&incoming, &committed).unwrap();
    assert_eq!(
        delta_log,
        vec![ListOp::DeleteRange(2, 2), ListOp::DeleteRange(4, 3)]
    );
    assert_delta_grid_equiv(&base, &committed, &incoming);
}

#[test]
fn overlapping_deletes_collapse_once() {
    let base = Rope::from("abcdefgh");
    assert_delta_grid_equiv(&base, &[TextOp::delete(1, 4)], &[TextOp::delete(3, 4)]);
    assert_delta_grid_equiv(&base, &[TextOp::delete(2, 3)], &[TextOp::delete(2, 3)]);
    assert_delta_grid_equiv(&base, &[TextOp::delete(0, 8)], &[TextOp::delete(2, 3)]);
}

#[test]
fn empty_and_degenerate_deltas() {
    let base: ChunkTree<u8> = (0..4).collect();
    // Empty logs on either side.
    assert_eq!(
        rebase_delta::<ListOp<u8>>(&[], &[ListOp::Insert(0, 1)])
            .unwrap()
            .0,
        Vec::<ListOp<u8>>::new()
    );
    let (log, stats) = rebase_delta::<ListOp<u8>>(&[ListOp::Insert(0, 1)], &[]).unwrap();
    assert_eq!(log, vec![ListOp::Insert(0, 1)]);
    assert_eq!(stats.committed_spans, 0);

    // A child log that cancels to the identity delta rebases to nothing.
    let incoming = vec![ListOp::Insert(2, 9u8), ListOp::Delete(2)];
    let committed = vec![ListOp::Insert(0, 7u8)];
    let (log, stats) = rebase_delta(&incoming, &committed).unwrap();
    assert!(log.is_empty());
    assert_eq!(stats.incoming_spans, 0);
    assert_delta_grid_equiv(&base, &committed, &incoming);

    // No-op span forms normalize away.
    let incoming = vec![
        ListOp::InsertRun(1, Vec::<u8>::new()),
        ListOp::DeleteRange(0, 0),
    ];
    let (log, _) = rebase_delta(&incoming, &committed).unwrap();
    assert!(log.is_empty());
}

#[test]
fn set_forces_grid_fallback() {
    // Any Set anywhere in either log must refuse the delta path entirely.
    assert!(rebase_delta(&[ListOp::Set(0, 1u8)], &[ListOp::Insert(0, 2)]).is_none());
    assert!(rebase_delta(&[ListOp::Insert(0, 2u8)], &[ListOp::Set(0, 1)]).is_none());
    assert!(rebase_delta(
        &[ListOp::Insert(0, 2u8), ListOp::Set(1, 3), ListOp::Delete(0)],
        &[ListOp::Insert(0, 4u8)],
    )
    .is_none());
}

// ---------------------------------------------------------------------
// property tests: arbitrary valid logs, with span ops
// ---------------------------------------------------------------------

/// A sequence of delta-eligible list ops (no `Set`) valid against a list
/// of length `len0`, point and span forms mixed.
fn list_seq_ops(len0: usize, max: usize) -> impl Strategy<Value = Vec<ListOp<u8>>> {
    prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()), 0..max).prop_map(
        move |raw| {
            let mut len = len0;
            let mut ops = Vec::new();
            for (kind, pos, val, n) in raw {
                match kind % 4 {
                    0 => {
                        let i = (pos as usize) % (len + 1);
                        ops.push(ListOp::Insert(i, val));
                        len += 1;
                    }
                    1 if len > 0 => {
                        let i = (pos as usize) % len;
                        ops.push(ListOp::Delete(i));
                        len -= 1;
                    }
                    2 => {
                        let i = (pos as usize) % (len + 1);
                        let run: Vec<u8> = (0..1 + (n as usize) % 3)
                            .map(|k| val.wrapping_add(k as u8))
                            .collect();
                        len += run.len();
                        ops.push(ListOp::InsertRun(i, run));
                    }
                    _ if len > 0 => {
                        let i = (pos as usize) % len;
                        let l = 1 + (n as usize) % (len - i).min(3);
                        len -= l;
                        ops.push(ListOp::DeleteRange(i, l));
                    }
                    _ => {}
                }
            }
            ops
        },
    )
}

/// A sequence of text ops valid against a text of `len0` characters.
fn text_ops(len0: usize, max: usize) -> impl Strategy<Value = Vec<TextOp>> {
    prop::collection::vec(
        (any::<bool>(), any::<u8>(), any::<u8>(), "[a-c]{1,3}"),
        0..max,
    )
    .prop_map(move |raw| {
        let mut len = len0;
        let mut ops = Vec::new();
        for (is_ins, pos, dlen, text) in raw {
            if is_ins {
                let p = (pos as usize) % (len + 1);
                len += text.chars().count();
                ops.push(TextOp::insert(p, text));
            } else if len > 0 {
                let p = (pos as usize) % len;
                let l = 1 + (dlen as usize) % (len - p).min(3);
                len -= l;
                ops.push(TextOp::delete(p, l));
            }
        }
        ops
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn prop_delta_grid_equiv_list(c in list_seq_ops(6, 10), i in list_seq_ops(6, 10)) {
        let base: ChunkTree<u8> = (0..6).collect();
        assert_delta_grid_equiv(&base, &c, &i);
    }

    #[test]
    fn prop_delta_grid_equiv_text(c in text_ops(8, 8), i in text_ops(8, 8)) {
        let base = Rope::from("abcdefgh");
        assert_delta_grid_equiv(&base, &c, &i);
    }

    #[test]
    fn prop_from_ops_into_ops_round_trips_effect(ops in list_seq_ops(6, 10)) {
        // Folding a log into a delta and re-materializing it must have the
        // same effect on the base state.
        let base: ChunkTree<u8> = (0..6).collect();
        let mut direct = base.clone();
        apply_all(&mut direct, &ops).unwrap();
        let materialized: Vec<ListOp<u8>> = from_ops(&ops).unwrap().into_ops();
        let mut via_delta = base.clone();
        apply_all(&mut via_delta, &materialized).unwrap();
        prop_assert_eq!(direct, via_delta);
    }
}

// ---------------------------------------------------------------------
// end to end through the runtime: MText / MList children take the
// delta path and still converge deterministically
// ---------------------------------------------------------------------

#[test]
fn runtime_scattered_merge_is_deterministic_on_the_delta_path() {
    let build = || {
        run(MText::from("0123456789abcdef"), |ctx| {
            let children: Vec<_> = (0..4u64)
                .map(|c| {
                    ctx.spawn(move |child| {
                        // Scattered, non-coalescing edits per child.
                        let positions = [11, 3, 7, 0, 13, 5];
                        for (k, p) in positions.iter().enumerate() {
                            let p = (*p + k) % (child.data().char_len() + 1);
                            child.data_mut().insert_str(p, format!("{c}"));
                        }
                        Ok(())
                    })
                })
                .collect();
            ctx.merge_all_from_set(&children.iter().collect::<Vec<_>>());
        })
    };
    let (a, ()) = build();
    let (b, ()) = build();
    assert_eq!(a.to_string(), b.to_string());
    assert_eq!(a.char_len(), 16 + 4 * 6);
}

#[test]
fn runtime_set_heavy_child_still_merges_via_grid() {
    // A child mixing Sets with inserts exercises the fallback end to end.
    let (list, ()) = run(MList::from_iter([1u32, 2, 3]), |ctx| {
        let t = ctx.spawn(|child| {
            child.data_mut().set(0, 10);
            child.data_mut().push(4);
            Ok(())
        });
        ctx.data_mut().insert(0, 0);
        ctx.merge_all_from_set(&[&t]);
    });
    assert_eq!(list.to_vec(), vec![0, 10, 2, 3, 4]);
}

// ---------------------------------------------------------------------
// speedup floor: the scattered 100x100 merge the delta path exists for
// ---------------------------------------------------------------------

/// The acceptance floor: scattered 100×100, delta path ≥ 5× over the raw
/// grid. Debug builds easily clear this too (the grid pays 9604 pair
/// transforms, the delta a few hundred span steps), so the floor is
/// asserted unconditionally; CI additionally runs it in release.
#[test]
fn scattered_delta_rebase_is_5x_faster_than_grid() {
    let committed: Vec<ListOp<u64>> = lcg_positions(100, 64)
        .into_iter()
        .enumerate()
        .map(|(i, p)| ListOp::Insert(p, i as u64))
        .collect();
    let incoming: Vec<ListOp<u64>> = lcg_positions(100, 64)
        .into_iter()
        .enumerate()
        .map(|(i, p)| ListOp::Insert(p, 1000 + i as u64))
        .collect();

    let best = |f: &mut dyn FnMut() -> Vec<ListOp<u64>>| {
        let mut best = u128::MAX;
        for _ in 0..5 {
            let t = Instant::now();
            std::hint::black_box(f());
            best = best.min(t.elapsed().as_nanos());
        }
        best
    };
    let grid_ns = best(&mut || rebase(&incoming, &committed));
    let delta_ns = best(&mut || rebase_delta(&incoming, &committed).unwrap().0);

    assert!(
        grid_ns as f64 / delta_ns.max(1) as f64 >= 5.0,
        "delta path not >=5x faster on scattered 100x100: grid {grid_ns} ns vs delta {delta_ns} ns"
    );
}
