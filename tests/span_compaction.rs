//! Cross-cutting tests for the span-compacted merge path: compacting
//! either side of a rebase must never change the merged state (on every
//! algebra, including adjacent-fuse and cancellation cases), the
//! contiguous-span fast path must actually be fast, and the
//! fork-watermark GC must keep the root's committed log bounded across
//! many merge rounds without altering results.

use std::time::Instant;

use proptest::prelude::*;
use spawn_merge::ot::cmap::CounterMapOp;
use spawn_merge::ot::compose::{compact, compact_list};
use spawn_merge::ot::counter::CounterOp;
use spawn_merge::ot::list::ListOp;
use spawn_merge::ot::map::MapOp;
use spawn_merge::ot::register::RegisterOp;
use spawn_merge::ot::seq::rebase;
use spawn_merge::ot::set::SetOp;
use spawn_merge::ot::state::{ChunkTree, Rope};
use spawn_merge::ot::text::TextOp;
use spawn_merge::ot::tree::{Node, TreeOp};
use spawn_merge::ot::{apply_all, Operation};
use spawn_merge::{run, MList};

/// The core equivalence: merging `incoming` over `committed` from `base`
/// gives the same state whether or not both logs are compacted first.
fn assert_compact_rebase_equiv<O>(base: &O::State, committed: &[O], incoming: &[O])
where
    O: Operation,
    O::State: Clone + PartialEq + std::fmt::Debug,
{
    let mut raw = base.clone();
    apply_all(&mut raw, committed).unwrap();
    apply_all(&mut raw, &rebase(incoming, committed)).unwrap();

    let cc = compact(committed);
    let ci = compact(incoming);
    let mut fused = base.clone();
    apply_all(&mut fused, &cc).unwrap();
    apply_all(&mut fused, &rebase(&ci, &cc)).unwrap();

    assert_eq!(raw, fused, "compaction changed the merge result");
}

// ---------------------------------------------------------------------
// deterministic adjacent-fuse and cancellation cases, per algebra
// ---------------------------------------------------------------------

#[test]
fn list_adjacent_fuse_and_cancel() {
    let base: ChunkTree<u8> = (0..8).collect();
    // Contiguous appends on both sides fuse to one InsertRun each.
    let committed: Vec<ListOp<u8>> = (0..5).map(|i| ListOp::Insert(8 + i, i as u8)).collect();
    let incoming: Vec<ListOp<u8>> = (0..5)
        .map(|i| ListOp::Insert(8 + i, 100 + i as u8))
        .collect();
    assert_eq!(compact_list(&committed).len(), 1);
    assert_compact_rebase_equiv(&base, &committed, &incoming);

    // Insert-then-delete cancellation inside the incoming log.
    let incoming = vec![
        ListOp::Insert(2, 42),
        ListOp::Delete(2),
        ListOp::Insert(0, 7),
    ];
    assert_eq!(compact_list(&incoming), vec![ListOp::Insert(0, 7)]);
    assert_compact_rebase_equiv(&base, &committed, &incoming);
}

#[test]
fn text_adjacent_fuse_and_cancel() {
    let base = Rope::from("abcdefgh");
    let committed = vec![TextOp::insert(0, "xx"), TextOp::insert(2, "yy")];
    // Typed-then-deleted text cancels (full and partial overlap).
    let incoming = vec![
        TextOp::insert(4, "oops"),
        TextOp::delete(5, 2),
        TextOp::insert(3, "k"),
    ];
    assert!(compact(&incoming).len() < incoming.len());
    assert_compact_rebase_equiv(&base, &committed, &incoming);
}

#[test]
fn counter_register_fuse_and_cancel() {
    // Counter adds fuse to one delta; +d / -d annihilates.
    let committed = vec![CounterOp::add(3), CounterOp::add(4)];
    let incoming = vec![CounterOp::add(10), CounterOp::add(-10), CounterOp::add(1)];
    assert_eq!(compact(&committed).len(), 1);
    assert_compact_rebase_equiv(&7i64, &committed, &incoming);

    // Register: last-write-wins, any run fuses to its last op.
    let committed = vec![RegisterOp::set(1u8), RegisterOp::set(2)];
    let incoming = vec![RegisterOp::set(8), RegisterOp::set(9)];
    assert_eq!(compact(&incoming), vec![RegisterOp::set(9)]);
    assert_compact_rebase_equiv(&0u8, &committed, &incoming);
}

#[test]
fn map_set_cmap_fuse_and_cancel() {
    let base: std::collections::BTreeMap<u8, i32> = [(0u8, 0i32), (1, 1)].into();
    // Same-key puts fuse; put-then-remove collapses to the remove.
    let committed = vec![MapOp::Put(0, 5), MapOp::Put(0, 6), MapOp::Put(2, 2)];
    let incoming = vec![MapOp::Put(3, 9), MapOp::Remove(3), MapOp::Put(1, 4)];
    assert!(compact(&committed).len() < committed.len());
    assert_compact_rebase_equiv(&base, &committed, &incoming);

    let base: std::collections::BTreeSet<u8> = [0u8, 1].into();
    let committed = vec![SetOp::Add(9)];
    let incoming = vec![SetOp::Add(7), SetOp::Remove(7), SetOp::Add(8)];
    assert_compact_rebase_equiv(&base, &committed, &incoming);

    let base: std::collections::BTreeMap<u8, i64> = [(0u8, 5i64)].into();
    let committed = vec![CounterMapOp::add(0, 2), CounterMapOp::add(0, 3)];
    let incoming = vec![CounterMapOp::add(1, 4), CounterMapOp::add(1, -4)];
    assert_eq!(compact(&committed).len(), 1);
    assert_compact_rebase_equiv(&base, &committed, &incoming);
}

#[test]
fn tree_fuse_case() {
    let base = Node::branch(0u8, vec![Node::leaf(1), Node::leaf(2)]);
    // Same-path SetValue runs fuse to the last write.
    let committed = vec![
        TreeOp::SetValue {
            path: vec![0],
            value: 10,
        },
        TreeOp::SetValue {
            path: vec![0],
            value: 11,
        },
    ];
    let incoming = vec![
        TreeOp::Insert {
            path: vec![2],
            node: Node::leaf(9),
        },
        TreeOp::SetValue {
            path: vec![1],
            value: 7,
        },
    ];
    assert_eq!(compact(&committed).len(), 1);
    assert_compact_rebase_equiv(&base, &committed, &incoming);
}

// ---------------------------------------------------------------------
// property tests: arbitrary valid logs, list and text
// ---------------------------------------------------------------------

/// A sequence of list ops valid against a list of length `len0`.
fn list_ops(len0: usize, max: usize) -> impl Strategy<Value = Vec<ListOp<u8>>> {
    prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 0..max).prop_map(move |raw| {
        let mut len = len0;
        let mut ops = Vec::new();
        for (kind, pos, val) in raw {
            match kind % 3 {
                0 => {
                    let i = (pos as usize) % (len + 1);
                    ops.push(ListOp::Insert(i, val));
                    len += 1;
                }
                1 if len > 0 => {
                    let i = (pos as usize) % len;
                    ops.push(ListOp::Delete(i));
                    len -= 1;
                }
                _ if len > 0 => {
                    ops.push(ListOp::Set((pos as usize) % len, val));
                }
                _ => {}
            }
        }
        ops
    })
}

/// A sequence of text ops valid against a text of `len0` characters.
fn text_ops(len0: usize, max: usize) -> impl Strategy<Value = Vec<TextOp>> {
    prop::collection::vec(
        (any::<bool>(), any::<u8>(), any::<u8>(), "[a-c]{1,3}"),
        0..max,
    )
    .prop_map(move |raw| {
        let mut len = len0;
        let mut ops = Vec::new();
        for (is_ins, pos, dlen, text) in raw {
            if is_ins {
                let p = (pos as usize) % (len + 1);
                len += text.chars().count();
                ops.push(TextOp::insert(p, text));
            } else if len > 0 {
                let p = (pos as usize) % len;
                let l = 1 + (dlen as usize) % (len - p).min(3);
                len -= l;
                ops.push(TextOp::delete(p, l));
            }
        }
        ops
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn prop_compact_rebase_equiv_list(c in list_ops(6, 10), i in list_ops(6, 10)) {
        let base: ChunkTree<u8> = (0..6).collect();
        assert_compact_rebase_equiv(&base, &c, &i);
    }

    #[test]
    fn prop_compact_rebase_equiv_text(c in text_ops(8, 8), i in text_ops(8, 8)) {
        let base = Rope::from("abcdefgh");
        assert_compact_rebase_equiv(&base, &c, &i);
    }

    #[test]
    fn prop_compact_rebase_equiv_counter(
        c in prop::collection::vec(-20i64..20, 0..8),
        i in prop::collection::vec(-20i64..20, 0..8),
    ) {
        let c: Vec<CounterOp> = c.into_iter().map(CounterOp::add).collect();
        let i: Vec<CounterOp> = i.into_iter().map(CounterOp::add).collect();
        assert_compact_rebase_equiv(&100i64, &c, &i);
    }

    #[test]
    fn prop_compact_rebase_equiv_map(
        c in prop::collection::vec((0u8..4, any::<i32>(), any::<bool>()), 0..8),
        i in prop::collection::vec((0u8..4, any::<i32>(), any::<bool>()), 0..8),
    ) {
        let mk = |raw: Vec<(u8, i32, bool)>| -> Vec<MapOp<u8, i32>> {
            raw.into_iter()
                .map(|(k, v, rm)| if rm { MapOp::Remove(k) } else { MapOp::Put(k, v) })
                .collect()
        };
        let base: std::collections::BTreeMap<u8, i32> = [(0u8, 0i32), (1, 1)].into();
        assert_compact_rebase_equiv(&base, &mk(c), &mk(i));
    }
}

// ---------------------------------------------------------------------
// speedup: the 500-contiguous-ops rebase must be at least 5x faster
// ---------------------------------------------------------------------

#[test]
fn contiguous_span_rebase_is_5x_faster() {
    let committed: Vec<ListOp<u64>> = (0..500).map(|i| ListOp::Insert(64 + i, i as u64)).collect();
    let incoming: Vec<ListOp<u64>> = (0..500)
        .map(|i| ListOp::Insert(64 + i, 1000 + i as u64))
        .collect();

    let best = |f: &mut dyn FnMut() -> Vec<ListOp<u64>>| {
        let mut best = u128::MAX;
        for _ in 0..3 {
            let t = Instant::now();
            std::hint::black_box(f());
            best = best.min(t.elapsed().as_nanos());
        }
        best
    };
    let raw_ns = best(&mut || rebase(&incoming, &committed));
    // Compaction time counts against the fast path.
    let compacted_ns = best(&mut || {
        let i = compact_list(&incoming);
        let c = compact_list(&committed);
        rebase(&i, &c)
    });

    assert!(
        raw_ns as f64 / compacted_ns.max(1) as f64 >= 5.0,
        "span path not >=5x faster: raw {raw_ns} ns vs compacted {compacted_ns} ns"
    );
}

// ---------------------------------------------------------------------
// fork-watermark GC through the runtime
// ---------------------------------------------------------------------

/// 120 spawn→merge_all rounds: every round forks a child at the current
/// history tip, so without GC the root's committed log would grow by at
/// least one (fusion-barriered) op per round. The watermark GC truncates
/// the prefix no live fork can rebase against, keeping the in-memory log
/// bounded by the outstanding divergence, not the total history.
#[test]
fn merge_rounds_keep_root_log_bounded() {
    const ROUNDS: u64 = 120;
    let build = || {
        run(MList::from_iter([0u64]), |ctx| {
            let mut max_log = 0usize;
            for round in 0..ROUNDS {
                let t = ctx.spawn(move |child| {
                    child.data_mut().push(round);
                    Ok(())
                });
                ctx.data_mut().push(1000 + round);
                ctx.merge_all_from_set(&[&t]);
                max_log = max_log.max(ctx.data().log().len());
            }
            max_log
        })
    };

    let (list, max_log) = build();
    assert_eq!(list.len(), 1 + 2 * ROUNDS as usize);
    assert!(
        max_log <= 4,
        "root committed log grew to {max_log} ops over {ROUNDS} rounds — GC not bounding memory"
    );

    // Determinism: truncation must be invisible in the merged result.
    let (again, _) = build();
    assert_eq!(list.to_vec(), again.to_vec());
}

/// A long-lived child (still unmerged) pins the watermark: ops after its
/// fork base survive GC, and its eventual merge is identical to a run
/// where the GC never fired in between.
#[test]
fn gc_preserves_late_merges() {
    let (list, ()) = run(MList::from_iter([7u64]), |ctx| {
        let slow = ctx.spawn(|child| {
            child.data_mut().push(999);
            Ok(())
        });
        // Many fast rounds while `slow` is outstanding; GC runs after
        // each merge_all but must keep everything past slow's fork base.
        for round in 0..50u64 {
            let fast = ctx.spawn(move |child| {
                child.data_mut().push(round);
                Ok(())
            });
            ctx.merge_all_from_set(&[&fast]);
        }
        ctx.merge_all_from_set(&[&slow]);
    });
    let v = list.to_vec();
    assert_eq!(v.len(), 52);
    assert!(v.contains(&999), "late merge lost the slow child's op");
}
