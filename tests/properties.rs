//! Property-based tests (proptest) over the whole stack: OT convergence
//! under the real fork/merge machinery, merge-order determinism, and
//! structure-specific laws.

use proptest::prelude::*;
use spawn_merge::{MCounter, MList, MMap, MQueue, MText, Mergeable};

/// A scripted list mutation, interpretable against both an `MList` and a
/// plain model `Vec` (positions are taken modulo the current shape so any
/// script is valid on any state).
#[derive(Debug, Clone)]
enum ListCmd {
    Push(u8),
    Insert(usize, u8),
    Remove(usize),
    Set(usize, u8),
}

fn list_cmds() -> impl Strategy<Value = Vec<ListCmd>> {
    prop::collection::vec(
        prop_oneof![
            any::<u8>().prop_map(ListCmd::Push),
            (any::<usize>(), any::<u8>()).prop_map(|(i, v)| ListCmd::Insert(i, v)),
            any::<usize>().prop_map(ListCmd::Remove),
            (any::<usize>(), any::<u8>()).prop_map(|(i, v)| ListCmd::Set(i, v)),
        ],
        0..12,
    )
}

fn apply_list(l: &mut MList<u8>, cmds: &[ListCmd]) {
    for c in cmds {
        match *c {
            ListCmd::Push(v) => l.push(v),
            ListCmd::Insert(i, v) => {
                let at = if l.is_empty() { 0 } else { i % (l.len() + 1) };
                l.insert(at, v);
            }
            ListCmd::Remove(i) => {
                if !l.is_empty() {
                    l.remove(i % l.len());
                }
            }
            ListCmd::Set(i, v) => {
                if !l.is_empty() {
                    l.set(i % l.len(), v);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Merging any two forks in a fixed order always converges to one
    /// result, and that result is reproducible (determinism of merge).
    #[test]
    fn list_fork_merge_is_deterministic(
        base in prop::collection::vec(any::<u8>(), 0..8),
        cmds_a in list_cmds(),
        cmds_b in list_cmds(),
        cmds_p in list_cmds(),
    ) {
        let build = || {
            let mut parent = MList::from_vec(base.clone());
            let mut a = parent.fork();
            let mut b = parent.fork();
            apply_list(&mut a, &cmds_a);
            apply_list(&mut b, &cmds_b);
            apply_list(&mut parent, &cmds_p);
            parent.merge(&a).unwrap();
            parent.merge(&b).unwrap();
            parent.to_vec()
        };
        prop_assert_eq!(build(), build());
    }

    /// An element deleted concurrently by both forks disappears exactly
    /// once; list length is always consistent with the op counts.
    #[test]
    fn list_merge_never_panics_and_preserves_untouched_prefix(
        base in prop::collection::vec(any::<u8>(), 1..8),
        cmds_a in list_cmds(),
        cmds_b in list_cmds(),
    ) {
        let mut parent = MList::from_vec(base);
        let mut a = parent.fork();
        let mut b = parent.fork();
        apply_list(&mut a, &cmds_a);
        apply_list(&mut b, &cmds_b);
        parent.merge(&a).unwrap();
        parent.merge(&b).unwrap();
        // No invariant violation: merging must always apply cleanly (the
        // unwraps above) — this is OT's "no aborts" guarantee.
    }

    /// Counters: the merged value equals base + sum of all deltas, for any
    /// interleaving and merge order.
    #[test]
    fn counter_merge_is_exact_sum(
        base in any::<i32>(),
        deltas_a in prop::collection::vec(-100i64..100, 0..10),
        deltas_b in prop::collection::vec(-100i64..100, 0..10),
        swap in any::<bool>(),
    ) {
        let mut parent = MCounter::new(i64::from(base));
        let mut a = parent.fork();
        let mut b = parent.fork();
        for d in &deltas_a { a.add(*d); }
        for d in &deltas_b { b.add(*d); }
        if swap {
            parent.merge(&b).unwrap();
            parent.merge(&a).unwrap();
        } else {
            parent.merge(&a).unwrap();
            parent.merge(&b).unwrap();
        }
        let expect = i64::from(base)
            + deltas_a.iter().sum::<i64>()
            + deltas_b.iter().sum::<i64>();
        prop_assert_eq!(parent.get(), expect);
    }

    /// Maps: keys touched by only one fork always carry that fork's value;
    /// contested keys carry the later-merged fork's value.
    #[test]
    fn map_key_ownership(
        a_vals in prop::collection::btree_map(0u8..10, any::<i32>(), 0..6),
        b_vals in prop::collection::btree_map(5u8..15, any::<i32>(), 0..6),
    ) {
        let mut parent: MMap<u8, i32> = MMap::new();
        let mut a = parent.fork();
        let mut b = parent.fork();
        for (k, v) in &a_vals { a.insert(*k, *v); }
        for (k, v) in &b_vals { b.insert(*k, *v); }
        parent.merge(&a).unwrap();
        parent.merge(&b).unwrap();
        for (k, v) in &a_vals {
            if !b_vals.contains_key(k) {
                prop_assert_eq!(parent.get(k), Some(v));
            }
        }
        for (k, v) in &b_vals {
            // b merged last: it wins all of its keys.
            prop_assert_eq!(parent.get(k), Some(v));
        }
    }

    /// Queues: concurrent pushes from two forks all survive, in merge
    /// order; pops consume from the front exactly once.
    #[test]
    fn queue_pushes_union_in_merge_order(
        base in prop::collection::vec(any::<u8>(), 0..5),
        push_a in prop::collection::vec(any::<u8>(), 0..6),
        push_b in prop::collection::vec(any::<u8>(), 0..6),
        pops_a in 0usize..4,
    ) {
        let mut parent = MQueue::from_vec(base.clone());
        let mut a = parent.fork();
        let mut b = parent.fork();
        let mut popped = Vec::new();
        for _ in 0..pops_a {
            if let Some(v) = a.pop_front() { popped.push(v); }
        }
        for v in &push_a { a.push_back(*v); }
        for v in &push_b { b.push_back(*v); }
        parent.merge(&a).unwrap();
        parent.merge(&b).unwrap();

        // Expected: base minus what a popped, then a's pushes, then b's.
        let mut expect: Vec<u8> = base[popped.len()..].to_vec();
        expect.extend(&push_a);
        expect.extend(&push_b);
        prop_assert_eq!(parent.to_vec(), expect);
        prop_assert_eq!(&base[..popped.len()], &popped[..]);
    }

    /// Text: merging never fails, is deterministic, and the merged length
    /// equals base + inserts − deletes actually applied.
    #[test]
    fn text_merge_deterministic(
        ins_a in prop::collection::vec((0usize..20, "[a-z]{1,3}"), 0..5),
        ins_b in prop::collection::vec((0usize..20, "[A-Z]{1,3}"), 0..5),
    ) {
        let build = || {
            let mut parent = MText::from("0123456789");
            let mut a = parent.fork();
            let mut b = parent.fork();
            for (p, s) in &ins_a {
                let at = p % (a.char_len() + 1);
                a.insert_str(at, s.clone());
            }
            for (p, s) in &ins_b {
                let at = p % (b.char_len() + 1);
                b.insert_str(at, s.clone());
            }
            parent.merge(&a).unwrap();
            parent.merge(&b).unwrap();
            parent.to_string()
        };
        let first = build();
        prop_assert_eq!(&first, &build());
        let ins_len: usize = ins_a.iter().chain(&ins_b).map(|(_, s)| s.chars().count()).sum();
        // No inserted character is ever lost (inserts never conflict away).
        prop_assert_eq!(first.chars().count(), 10 + ins_len);
        // Cross-fork inserts are atomic: the *final* insert of each fork
        // survives contiguously (earlier ones may be split by the same
        // fork's own later inserts, which is ordinary sequential editing).
        for last in [ins_a.last(), ins_b.last()].into_iter().flatten() {
            prop_assert!(
                first.contains(last.1.as_str()),
                "lost final insert {:?} in {:?}",
                &last.1,
                &first
            );
        }
    }
}

proptest! {
    /// A journal replay fed arbitrary bytes — a corrupted WAL payload
    /// whose frame CRC happened to collide, or a hostile wire peer — must
    /// report a clean `ReplayError`, never panic, and leave the structure
    /// usable.
    #[test]
    fn apply_log_on_garbage_errors_cleanly(bytes in prop::collection::vec(any::<u8>(), 0..96)) {
        use spawn_merge::store::wal::Bytes;
        use spawn_merge::Persist;

        let mut list = MList::<u32>::from_iter([1, 2, 3]);
        let _ = list.apply_log(&mut Bytes::copy_from_slice(&bytes));
        list.push(4); // still usable afterwards

        let mut text = MText::from("base");
        let _ = text.apply_log(&mut Bytes::copy_from_slice(&bytes));
        text.push_str("!");

        let mut map: MMap<u8, i32> = MMap::new();
        let _ = map.apply_log(&mut Bytes::copy_from_slice(&bytes));

        let mut counter = MCounter::new(0);
        let _ = counter.apply_log(&mut Bytes::copy_from_slice(&bytes));
    }
}
