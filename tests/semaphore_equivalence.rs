//! §IV-A: the Spawn & Merge primitives are expressive enough to model a
//! semaphore. These tests check the emulated semaphore actually *behaves*
//! like one: mutual exclusion, permit accounting, progress, FIFO grants,
//! and the deadlock-degradation behaviour.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use spawn_merge::core::semaphore::run_with_semaphore;

#[test]
fn binary_semaphore_enforces_mutual_exclusion() {
    let concurrent = Arc::new(AtomicUsize::new(0));
    let max_seen = Arc::new(AtomicUsize::new(0));
    let violations = Arc::new(AtomicUsize::new(0));
    let (c, m, v) = (
        Arc::clone(&concurrent),
        Arc::clone(&max_seen),
        Arc::clone(&violations),
    );

    let outcome = run_with_semaphore(1, 5, move |_i, sem| {
        for _ in 0..4 {
            sem.acquire()?;
            let now = c.fetch_add(1, Ordering::SeqCst) + 1;
            m.fetch_max(now, Ordering::SeqCst);
            if now > 1 {
                v.fetch_add(1, Ordering::SeqCst);
            }
            // Hold the "lock" long enough for overlap to show if it could.
            std::thread::sleep(std::time::Duration::from_micros(300));
            c.fetch_sub(1, Ordering::SeqCst);
            sem.release()?;
        }
        Ok(())
    });

    assert_eq!(
        violations.load(Ordering::SeqCst),
        0,
        "mutual exclusion violated"
    );
    assert_eq!(max_seen.load(Ordering::SeqCst), 1);
    assert_eq!(outcome.grants, 20);
    assert_eq!(outcome.final_value, 1, "all permits returned");
    assert!(!outcome.deadlocked);
}

#[test]
fn counting_semaphore_bounds_concurrency_at_permits() {
    const PERMITS: i64 = 3;
    let concurrent = Arc::new(AtomicUsize::new(0));
    let max_seen = Arc::new(AtomicUsize::new(0));
    let (c, m) = (Arc::clone(&concurrent), Arc::clone(&max_seen));

    let outcome = run_with_semaphore(PERMITS, 8, move |_i, sem| {
        for _ in 0..3 {
            sem.acquire()?;
            let now = c.fetch_add(1, Ordering::SeqCst) + 1;
            m.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_micros(200));
            c.fetch_sub(1, Ordering::SeqCst);
            sem.release()?;
        }
        Ok(())
    });

    assert!(max_seen.load(Ordering::SeqCst) <= PERMITS as usize);
    assert_eq!(outcome.grants, 24);
    assert_eq!(outcome.final_value, PERMITS);
}

#[test]
fn ample_permits_never_block_anyone() {
    let outcome = run_with_semaphore(100, 6, |_i, sem| {
        sem.acquire()?;
        sem.release()?;
        Ok(())
    });
    assert_eq!(outcome.grants, 6);
    assert_eq!(outcome.final_value, 100);
    assert!(!outcome.deadlocked);
    assert_eq!(outcome.stranded_workers, 0);
}

#[test]
fn workers_not_using_the_semaphore_are_unaffected() {
    let outcome = run_with_semaphore(1, 4, |i, sem| {
        if i % 2 == 0 {
            sem.acquire()?;
            sem.release()?;
        }
        Ok(())
    });
    assert_eq!(outcome.grants, 2);
    assert!(!outcome.deadlocked);
}

#[test]
fn zero_permits_deadlocks_and_is_detected() {
    let outcome = run_with_semaphore(0, 3, |_i, sem| {
        sem.acquire()?;
        Ok(())
    });
    assert!(
        outcome.deadlocked,
        "all waiters blocked ⇒ emulated deadlock"
    );
    assert_eq!(outcome.stranded_workers, 3);
    assert_eq!(outcome.grants, 0);
}

#[test]
fn partial_deadlock_counts_only_stranded_workers() {
    // One permit, never released: the first acquirer completes while
    // holding it; the remaining workers strand.
    let outcome = run_with_semaphore(1, 4, |_i, sem| {
        sem.acquire()?;
        Ok(()) // never releases
    });
    assert!(outcome.deadlocked);
    assert_eq!(outcome.grants, 1);
    assert_eq!(outcome.stranded_workers, 3);
}

#[test]
fn semaphore_emulation_is_progress_preserving_under_load() {
    // Many short critical sections: everything must eventually be granted.
    let counter = Arc::new(AtomicUsize::new(0));
    let c = Arc::clone(&counter);
    let outcome = run_with_semaphore(2, 6, move |_i, sem| {
        for _ in 0..10 {
            sem.acquire()?;
            c.fetch_add(1, Ordering::SeqCst);
            sem.release()?;
        }
        Ok(())
    });
    assert_eq!(counter.load(Ordering::SeqCst), 60);
    assert_eq!(outcome.grants, 60);
    assert!(!outcome.deadlocked);
}
