//! The live telemetry plane, end to end:
//!
//! 1. **Endpoints under load** — `/metrics`, `/flight` and `/health`
//!    answer while a netsim Spawn & Merge run is in flight, and the
//!    scraped bodies carry nonzero hot-path phase counters.
//! 2. **Live desync sentinel** — two replicas serving `/health` can be
//!    diffed at runtime; an injected divergence is detected and
//!    localized to the task whose digest chain differs.
//! 3. **Flight recorder black box** — rings overwrite oldest-first and
//!    an anomaly (merge rejection) triggers an automatic dump to disk
//!    mid-run, without anyone calling dump().
//! 4. **Distributed wiring** — `DistRuntime::launch_with` serves the
//!    endpoint for the lifetime of the run and the wire phases
//!    (encode/decode/round-trip) land in the histograms.
//!
//! The recorder slot is process-global, so every test here serializes on
//! one mutex (same pattern as `tests/observability.rs`).

use std::sync::{Arc, Mutex, PoisonError};

use spawn_merge::dist::{DistRuntime, JobRegistry, TelemetryConfig};
use spawn_merge::net::Network;
use spawn_merge::netsim::{run_live, Routing, SimConfig};
use spawn_merge::obs::{
    self, health_divergence, http_get, DeterminismAuditor, FlightRecorder, Metrics, MultiRecorder,
    ObsServer, Recorder, TelemetrySources,
};
use spawn_merge::{run, MCounter, MCounterMap, MList};

/// All tests share the process-wide recorder slot; run them one at a time.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Value of a plain (unlabelled) counter in a Prometheus text body.
fn counter_value(body: &str, name: &str) -> Option<f64> {
    body.lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .and_then(|v| v.trim().parse().ok())
}

/// Value of one labelled sample, matched by substring of the label block.
fn labelled_value(body: &str, name: &str, label_part: &str) -> Option<f64> {
    body.lines().filter(|l| !l.starts_with('#')).find_map(|l| {
        let (metric, value) = l.rsplit_once(' ')?;
        (metric.starts_with(&format!("{name}{{")) && metric.contains(label_part))
            .then(|| value.parse().ok())?
    })
}

#[test]
fn endpoints_answer_during_a_netsim_run_with_phase_counters() {
    let _guard = serial();
    let cfg = SimConfig {
        hosts: 4,
        initial_messages: 12,
        ttl: 8,
        workload: 20,
        routing: Routing::NextHost,
        ..SimConfig::default()
    };
    let report = run_live(&cfg, 9400);
    assert_eq!(report.result.total_processed, cfg.expected_hops());

    // /metrics: well-formed exposition with live hot-path phase counters.
    let spawned = counter_value(&report.metrics_body, "sm_tasks_spawned_total")
        .expect("spawned counter exposed");
    assert!(spawned >= cfg.hosts as f64);
    let apply_count = labelled_value(&report.metrics_body, "sm_phase_nanos_count", "state_apply")
        .expect("state_apply histogram exposed");
    assert!(apply_count > 0.0, "merges must feed the phase histograms");

    // /flight: a JSON ring dump holding recent events.
    let flight = spawn_merge::obs::json::parse(&report.flight_body).expect("flight JSON parses");
    assert!(flight.get("retained").unwrap().as_num().unwrap() > 0.0);
    assert!(flight.get("threads").unwrap().as_num().unwrap() >= 1.0);

    // /health: digest chains present and OK.
    let health = spawn_merge::obs::json::parse(&report.health_body).expect("health JSON parses");
    assert!(health.get("digest").unwrap().as_str().is_some());
    assert!(health.get("chain_count").unwrap().as_num().unwrap() > 0.0);
    assert_eq!(
        health.get("tasks").unwrap().get("live").unwrap().as_num(),
        Some(0.0),
        "after the run, no live tasks remain"
    );
}

/// Run a deterministic program with a fresh auditor installed, spawning
/// `children` children, and return the sources serving its state.
fn replica_after_run(name: &str, children: u64) -> TelemetrySources {
    let mut sources = TelemetrySources::named(name);
    sources.metrics = Some(Arc::new(Metrics::new()));
    sources.auditor = Some(Arc::new(DeterminismAuditor::new()));
    let sinks: Vec<Arc<dyn Recorder>> = vec![
        sources.metrics.clone().unwrap() as Arc<dyn Recorder>,
        sources.auditor.clone().unwrap() as Arc<dyn Recorder>,
    ];
    obs::install(Arc::new(MultiRecorder::new(sinks)));
    let (_, ()) = run(MList::<u64>::new(), |ctx| {
        for i in 0..children {
            ctx.spawn(move |child| {
                child.data_mut().push(i);
                Ok(())
            });
        }
        ctx.merge_all();
        ctx.merge_all();
    });
    obs::uninstall();
    sources
}

#[test]
fn two_replica_health_diff_detects_injected_divergence() {
    let _guard = serial();
    let net = Network::new();

    // Identical replicas first: the sentinel must stay silent.
    let a = replica_after_run("replica-a", 3);
    let b = replica_after_run("replica-b", 3);
    let sa = ObsServer::start(&net, 9410, a).unwrap();
    let sb = ObsServer::start(&net, 9411, b).unwrap();
    let ha = http_get(&net, 9410, "/health").unwrap().1;
    let hb = http_get(&net, 9411, "/health").unwrap().1;
    assert_eq!(
        health_divergence(&ha, &hb).unwrap(),
        Vec::<String>::new(),
        "identical programs must agree"
    );
    sa.stop();
    sb.stop();

    // Injected divergence: replica c spawns one extra child.
    let c = replica_after_run("replica-c", 4);
    let sc = ObsServer::start(&net, 9412, c).unwrap();
    let hc = http_get(&net, 9412, "/health").unwrap().1;
    let diverged = health_divergence(&ha, &hc).unwrap();
    assert!(
        diverged.contains(&"0".to_string()),
        "divergence must localize to the root's merge chain, got {diverged:?}"
    );
    sc.stop();
}

#[test]
fn flight_recorder_dumps_to_disk_on_merge_rejection() {
    let _guard = serial();
    let dir = std::env::temp_dir().join(format!("sm-telemetry-anomaly-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let flight = Arc::new(FlightRecorder::new(256).with_anomaly_dir(&dir));
    obs::install(flight.clone());

    let (counter, ()) = run(MCounter::new(0), |ctx| {
        ctx.spawn(|child| {
            child.data_mut().add(50);
            // Rejected by the parent's condition: the anomaly.
            assert!(child.sync().is_err());
            child.data_mut().add(-45);
            child.sync()?;
            Ok(())
        });
        ctx.merge_all_with(&|d: &MCounter| d.get() < 10);
        ctx.merge_all();
        ctx.merge_all();
    });
    obs::uninstall();
    assert_eq!(counter.get(), 5);

    assert!(
        flight.anomaly_dump_count() >= 1,
        "the merge rejection must trigger an automatic dump"
    );
    let dumps: Vec<_> = std::fs::read_dir(&dir)
        .expect("anomaly dir created")
        .filter_map(Result::ok)
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    assert!(
        dumps.iter().any(|f| f.starts_with("flight-anomaly-")),
        "dump file must land on disk, found {dumps:?}"
    );
    let body = std::fs::read_to_string(dir.join(&dumps[0])).unwrap();
    assert!(
        body.contains("merge_rejected"),
        "the dump must contain the anomaly event itself"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn flight_ring_keeps_only_the_most_recent_events() {
    let _guard = serial();
    let flight = Arc::new(FlightRecorder::new(8));
    obs::install(flight.clone());
    let (list, ()) = run(MList::<u64>::new(), |ctx| {
        for i in 0..20 {
            ctx.spawn(move |child| {
                child.data_mut().push(i);
                Ok(())
            });
            ctx.merge_all();
        }
        ctx.merge_all();
    });
    obs::uninstall();
    assert_eq!(list.len(), 20);
    assert!(
        flight.recorded() > 8,
        "the run must overflow an 8-slot ring"
    );
    let entries = flight.dump();
    // Bounded: never more than capacity per thread; and the retained
    // entries are the newest (their seq stamps sit at the top end).
    let max_seq = entries.iter().map(|e| e.seq).max().unwrap();
    assert_eq!(max_seq + 1, flight.recorded(), "newest event retained");
}

#[test]
fn dist_runtime_serves_endpoint_and_times_the_wire() {
    let _guard = serial();
    let net = Network::new();
    let mut jobs: JobRegistry<MCounterMap<String>> = JobRegistry::new();
    jobs.register("count", |data, arg| {
        for w in String::from_utf8_lossy(arg).split_whitespace() {
            data.inc(w.to_string());
        }
        Ok(())
    });

    let config = TelemetryConfig::full(net.clone(), 9420, "dist-coordinator");
    let mut rt = DistRuntime::launch_with(2, MCounterMap::new(), &jobs, config).unwrap();
    assert_eq!(rt.telemetry_port(), Some(9420));
    rt.spawn(1, "count", b"a b a").unwrap();
    rt.spawn(2, "count", b"b c").unwrap();
    rt.merge_all().unwrap();

    // Scrape while the runtime (and its endpoint) are still up.
    let (status, metrics) = http_get(&net, 9420, "/metrics").unwrap();
    assert_eq!(status, 200);
    for phase in ["wire_encode", "wire_decode", "wire_roundtrip"] {
        let n = labelled_value(&metrics, "sm_phase_nanos_count", phase)
            .unwrap_or_else(|| panic!("{phase} histogram missing"));
        assert!(n > 0.0, "{phase} must be timed during a distributed run");
    }
    let (status, health) = http_get(&net, 9420, "/health").unwrap();
    assert_eq!(status, 200);
    assert!(health.contains("dist-coordinator"));

    let counts = rt.shutdown().unwrap();
    assert_eq!(counts.get(&"a".to_string()), 2);
    // Shutdown stopped the endpoint and released the port.
    assert!(net.listen(9420).is_ok());
    assert!(!obs::is_enabled(), "shutdown uninstalls the full plane");
}
