//! §II-D / §II-F: merge conditions (runtime-managed rollback) and the
//! three abort paths — child error, child panic, external abort — across
//! both completion merges and sync merges.

use spawn_merge::{
    run, AbortReason, Disposition, MCounter, MList, MRegister, SyncError, TaskAbort,
};

#[test]
fn condition_rollback_on_completion_merge() {
    let (list, ()) = run(MList::<i32>::new(), |ctx| {
        for i in 0..6 {
            ctx.spawn(move |c| {
                c.data_mut().push(i);
                Ok(())
            });
        }
        // Accept only children whose result sums to an even value.
        let report = ctx.merge_all_with(&|d: &MList<i32>| d.iter().sum::<i32>() % 2 == 0);
        let merged: Vec<bool> = report
            .children
            .iter()
            .map(|c| c.disposition.is_merged())
            .collect();
        assert_eq!(merged, vec![true, false, true, false, true, false]);
    });
    assert_eq!(list.to_vec(), vec![0, 2, 4], "odd pushes rolled back");
}

#[test]
fn condition_sees_cumulative_state_through_syncs() {
    // A budgeted accumulator: children add 30 each; the condition caps the
    // child-visible total at 100, so merges start failing once the child's
    // fork already carries the earlier merges.
    let (counter, rejected) = run(MCounter::new(0), |ctx| {
        for _ in 0..5 {
            ctx.spawn(|c| {
                c.data_mut().add(30);
                match c.sync() {
                    Ok(()) | Err(SyncError::MergeRejected) => Ok(()),
                    Err(e) => Err(e.into()),
                }
            });
        }
        let cond = |d: &MCounter| d.get() <= 100;
        let mut rejected = 0;
        // Round 1: syncs. Round 2: completions.
        for _ in 0..2 {
            let report = ctx.merge_all_with(&cond);
            rejected += report.children.len() - report.merged_count();
        }
        rejected
    });
    // Round 1: every child's data shows 0+30 = 30 → all five merges pass
    // (the condition sees the child's data, which was forked before any
    // sibling merged). Total: 150.
    assert_eq!(counter.get(), 150);
    // Round 2 (completions): each child's data is now the *fresh fork* it
    // received after its sync, which includes earlier siblings' merges —
    // the 4th and 5th forks read 120 and 150, so their (no-op) completion
    // merges are rejected by the cap. Nothing is lost (they carried no
    // operations), but the report records the rejections: conditions
    // evaluate the child's entire data, inherited state included.
    assert_eq!(rejected, 2);
}

#[test]
fn rejected_sync_rolls_back_and_child_can_abort() {
    let (list, ()) = run(MList::<i32>::from_iter([1]), |ctx| {
        ctx.spawn(|c| {
            c.data_mut().push(999);
            match c.sync() {
                Err(SyncError::MergeRejected) => Err(TaskAbort::new("giving up")),
                other => panic!("expected rejection, got {other:?}"),
            }
        });
        ctx.merge_all_with(&|d: &MList<i32>| !d.iter().any(|v| *v > 100));
        let report = ctx.merge_all();
        assert!(matches!(
            report.children[0].disposition,
            Disposition::AbortedByChild(AbortReason::Error(_))
        ));
    });
    assert_eq!(list.to_vec(), vec![1]);
}

#[test]
fn panic_mid_sync_protocol_is_contained() {
    let (counter, ()) = run(MCounter::new(0), |ctx| {
        ctx.spawn(|c| {
            c.data_mut().inc();
            c.sync()?;
            c.data_mut().add(100);
            panic!("after first sync");
        });
        ctx.merge_all(); // merges the sync (+1)
        let report = ctx.merge_all(); // the panic completion
        assert!(matches!(
            report.children[0].disposition,
            Disposition::AbortedByChild(AbortReason::Panic(_))
        ));
    });
    assert_eq!(
        counter.get(),
        1,
        "synced work survives; post-sync work dies with the panic"
    );
}

#[test]
fn external_abort_discards_sync_changes_too() {
    let (counter, ()) = run(MCounter::new(0), |ctx| {
        let t = ctx.spawn(|c| loop {
            c.data_mut().inc();
            if c.sync().is_err() {
                return Ok(());
            }
        });
        ctx.merge_all(); // +1
        t.abort();
        while ctx.live_children() > 0 {
            ctx.merge_all(); // rejected syncs, then the completion
        }
    });
    assert_eq!(counter.get(), 1);
}

#[test]
fn abort_flag_is_visible_to_the_child() {
    let (flag_seen, ()) = run(MRegister::new(false), |ctx| {
        let t = ctx.spawn(|c| {
            while !c.is_aborted() {
                std::thread::yield_now();
            }
            // Record that we saw it (will be discarded at merge — assert
            // via check_abort instead).
            assert!(c.check_abort().is_err());
            Ok(())
        });
        t.abort();
        ctx.merge_all();
    });
    assert!(!*flag_seen.get());
}

#[test]
fn aborted_parent_aborts_descendants() {
    // A child that aborts while its own children are still syncing must
    // tear the whole subtree down and report the abort upward.
    let (counter, ()) = run(MCounter::new(0), |ctx| {
        ctx.spawn(|child| {
            for _ in 0..3 {
                child.spawn(|gc| loop {
                    gc.data_mut().inc();
                    if gc.sync().is_err() {
                        return Ok(());
                    }
                });
            }
            // Give the grandchildren one merged round, then bail out.
            child.merge_all();
            Err(TaskAbort::new("subtree abandoned"))
        });
        let report = ctx.merge_all();
        assert!(matches!(
            report.children[0].disposition,
            Disposition::AbortedByChild(AbortReason::Error(_))
        ));
    });
    // Everything the subtree did was discarded at the root.
    assert_eq!(counter.get(), 0);
}

#[test]
fn merge_any_with_condition() {
    let (counter, ()) = run(MCounter::new(0), |ctx| {
        for i in [5i64, 500] {
            ctx.spawn(move |c| {
                c.data_mut().add(i);
                Ok(())
            });
        }
        let cond = |d: &MCounter| d.get() < 100;
        let mut merged = 0;
        let mut rejected = 0;
        while let Some(mc) = ctx.merge_any_with(&cond) {
            if mc.disposition.is_merged() {
                merged += 1;
            } else {
                rejected += 1;
            }
        }
        assert_eq!((merged, rejected), (1, 1));
    });
    assert_eq!(counter.get(), 5);
}
