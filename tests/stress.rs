//! Randomized stress tests: generate random task-tree programs over a
//! composite data structure and assert the central theorem — a Spawn &
//! Merge program using only deterministic merges computes a pure function
//! of its inputs, for *any* schedule.
//!
//! The generator is seeded (no `proptest` shrinking needed here; failures
//! print the seed), and every generated program is executed several times
//! with different thread-timing perturbations.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spawn_merge::{
    mergeable_struct, run, MCounter, MCounterMap, MList, MText, TaskCtx, TaskResult,
};

mergeable_struct! {
    /// The stress-test composite: one of everything that matters.
    #[derive(Debug, Clone)]
    struct World {
        list: MList<u32>,
        text: MText,
        count: MCounter,
        hist: MCounterMap<u8>,
    }
}

impl World {
    fn new() -> Self {
        World {
            list: MList::new(),
            text: MText::new(),
            count: MCounter::new(0),
            hist: MCounterMap::new(),
        }
    }

    /// A stable digest of the observable state.
    fn digest(&self) -> String {
        format!(
            "{:?}|{}|{}|{:?}",
            self.list.to_vec(),
            self.text,
            self.count.get(),
            self.hist.iter().collect::<Vec<_>>()
        )
    }
}

/// One random mutation on the world, valid against any state.
fn mutate(rng: &mut StdRng, w: &mut World) {
    match rng.gen_range(0..6) {
        0 => w.list.push(rng.gen_range(0..100)),
        1 if !w.list.is_empty() => {
            let i = rng.gen_range(0..w.list.len());
            w.list.remove(i);
        }
        2 => {
            let at = rng.gen_range(0..=w.text.char_len());
            w.text.insert_str(at, format!("{}", rng.gen_range(0..10)));
        }
        3 => w.count.add(rng.gen_range(-5..=5)),
        4 => w.hist.add(rng.gen_range(0..8), 1),
        _ => {
            if w.text.char_len() > 0 {
                let pos = rng.gen_range(0..w.text.char_len());
                w.text.delete_range(pos, 1);
            }
        }
    }
}

/// Recursively run a random subtree of tasks. Everything is derived from
/// the seed, so two executions of the same seed describe the same program.
fn random_task(seed: u64, depth: u32, jitter: u64, ctx: &mut TaskCtx<World>) -> TaskResult {
    let mut rng = StdRng::seed_from_u64(seed);
    // Local mutations before spawning.
    for _ in 0..rng.gen_range(1..5) {
        mutate(&mut rng, ctx.data_mut());
    }
    std::thread::sleep(std::time::Duration::from_micros(
        (seed.wrapping_mul(jitter)) % 300,
    ));
    if depth > 0 {
        let children = rng.gen_range(0..4);
        for c in 0..children {
            let child_seed = seed.wrapping_mul(31).wrapping_add(c);
            ctx.spawn(move |cc| random_task(child_seed, depth - 1, jitter, cc));
        }
        ctx.merge_all();
    }
    // Mutations after merging the subtree.
    for _ in 0..rng.gen_range(0..3) {
        mutate(&mut rng, ctx.data_mut());
    }
    Ok(())
}

fn run_program(seed: u64, jitter: u64) -> String {
    let (world, ()) = run(World::new(), |ctx| {
        random_task(seed, 2, jitter, ctx).unwrap();
    });
    world.digest()
}

#[test]
fn random_programs_are_schedule_independent() {
    for seed in [1u64, 7, 42, 1234, 99999, 0xDEAD] {
        let baseline = run_program(seed, 1);
        for jitter in [3u64, 17, 101] {
            assert_eq!(
                run_program(seed, jitter),
                baseline,
                "seed {seed} diverged under jitter {jitter}"
            );
        }
    }
}

#[test]
fn wide_flat_fanout_stress() {
    // 48 children, all hammering the same structures.
    let run_once = |jitter: u64| {
        let (world, ()) = run(World::new(), |ctx| {
            for i in 0..48u64 {
                ctx.spawn(move |c| {
                    std::thread::sleep(std::time::Duration::from_micros((i * jitter) % 200));
                    let mut rng = StdRng::seed_from_u64(i);
                    for _ in 0..6 {
                        mutate(&mut rng, c.data_mut());
                    }
                    Ok(())
                });
            }
            ctx.merge_all();
        });
        world.digest()
    };
    let baseline = run_once(1);
    for jitter in [5u64, 23, 77] {
        assert_eq!(run_once(jitter), baseline);
    }
}

#[test]
fn repeated_sync_rounds_stress() {
    let run_once = |jitter: u64| {
        let (world, ()) = run(World::new(), |ctx| {
            for i in 0..8u64 {
                ctx.spawn(move |c| {
                    let mut rng = StdRng::seed_from_u64(i * 1000);
                    for round in 0..5u64 {
                        std::thread::sleep(std::time::Duration::from_micros(
                            (i * round * jitter) % 150,
                        ));
                        mutate(&mut rng, c.data_mut());
                        c.sync()?;
                    }
                    Ok(())
                });
            }
            for _ in 0..6 {
                ctx.merge_all();
            }
        });
        world.digest()
    };
    let baseline = run_once(1);
    for jitter in [9u64, 31] {
        assert_eq!(run_once(jitter), baseline);
    }
}

#[test]
fn counters_are_exact_under_stress() {
    // Whatever the interleaving, commutative counters must be exact.
    let (world, ()) = run(World::new(), |ctx| {
        for _ in 0..32 {
            ctx.spawn(|c| {
                for _ in 0..25 {
                    c.data_mut().count.inc();
                    c.data_mut().hist.add(3, 2);
                }
                Ok(())
            });
        }
        ctx.merge_all();
    });
    assert_eq!(world.count.get(), 32 * 25);
    assert_eq!(world.hist.get(&3), 32 * 25 * 2);
}
