//! Functional validation of the Figure 3 experiment setups (the timing
//! sweep itself lives in `sm-bench`): all four setups conserve work, the
//! Spawn & Merge setups are deterministic, and the two implementations
//! agree exactly where the paper's argument says they must.

use spawn_merge::netsim::{run_setup, Routing, Setup, SimConfig};

#[test]
fn paper_scale_zero_workload_all_setups_conserve_hops() {
    // Full 20 hosts / 100 messages / TTL 100 at l = 0: 10 000 processings.
    let cfg = SimConfig::paper(0, Routing::HashDerived);
    for setup in Setup::ALL {
        let r = run_setup(setup, &cfg);
        assert_eq!(r.total_processed, 10_000, "{}", setup.label());
        assert!(r.stats.iter().any(|s| s.processed > 0));
    }
}

#[test]
fn spawn_merge_hash_routing_identical_across_five_runs() {
    let cfg = SimConfig {
        hosts: 6,
        initial_messages: 18,
        ttl: 12,
        workload: 3,
        routing: Routing::HashDerived,
        ..SimConfig::default()
    };
    let first = run_setup(Setup::SpawnMergeNonDet, &cfg);
    for _ in 0..4 {
        let r = run_setup(Setup::SpawnMergeNonDet, &cfg);
        assert_eq!(r.fingerprint, first.fingerprint);
        assert_eq!(
            r.stats.iter().map(|s| s.processed).collect::<Vec<_>>(),
            first.stats.iter().map(|s| s.processed).collect::<Vec<_>>()
        );
    }
}

#[test]
fn spawn_merge_determinism_independent_of_parallelism() {
    // Same program, pools of different warmth → identical outcome. (The
    // paper: "regardless of the number of cores they are executed on".)
    use spawn_merge::netsim::spawnmerge::run_spawn_merge_with_pool;
    use spawn_merge::Pool;

    let cfg = SimConfig {
        hosts: 5,
        initial_messages: 15,
        ttl: 10,
        workload: 2,
        routing: Routing::HashDerived,
        ..SimConfig::default()
    };
    let cold = run_spawn_merge_with_pool(&cfg, Pool::new());
    let warm_pool = Pool::new();
    for _ in 0..8 {
        warm_pool.execute(|| std::thread::sleep(std::time::Duration::from_millis(1)));
    }
    let warm = run_spawn_merge_with_pool(&cfg, warm_pool);
    assert_eq!(cold.fingerprint, warm.fingerprint);
}

#[test]
fn ring_variants_agree_across_implementations() {
    // With ring routing each queue has a single producer, so both the
    // conventional and the Spawn & Merge implementation process identical
    // per-host sequences: fingerprints must match exactly.
    let cfg = SimConfig {
        hosts: 5,
        initial_messages: 10,
        ttl: 8,
        workload: 1,
        routing: Routing::NextHost,
        ..SimConfig::default()
    };
    let conv = run_setup(Setup::ConventionalDet, &cfg);
    let sm = run_setup(Setup::SpawnMergeDet, &cfg);
    assert_eq!(conv.fingerprint, sm.fingerprint);
    assert_eq!(conv.total_processed, sm.total_processed);
}

#[test]
fn workload_changes_results_but_not_counts() {
    let mk = |l| SimConfig {
        hosts: 4,
        initial_messages: 8,
        ttl: 6,
        workload: l,
        routing: Routing::HashDerived,
        ..SimConfig::default()
    };
    let a = run_setup(Setup::SpawnMergeNonDet, &mk(0));
    let b = run_setup(Setup::SpawnMergeNonDet, &mk(5));
    assert_eq!(a.total_processed, b.total_processed);
    assert_ne!(
        a.fingerprint, b.fingerprint,
        "workload feeds the payload digests"
    );
}

#[test]
fn single_host_single_message_edge_case() {
    // Smallest possible simulation: 1 host, 1 message bouncing to itself.
    let cfg = SimConfig {
        hosts: 1,
        initial_messages: 1,
        ttl: 5,
        workload: 0,
        routing: Routing::NextHost,
        ..SimConfig::default()
    };
    for setup in Setup::ALL {
        let r = run_setup(setup, &cfg);
        assert_eq!(r.total_processed, 5, "{}", setup.label());
        assert_eq!(r.stats[0].processed, 5);
    }
}

#[test]
fn ttl_one_messages_die_immediately() {
    let cfg = SimConfig {
        hosts: 3,
        initial_messages: 9,
        ttl: 1,
        workload: 0,
        routing: Routing::HashDerived,
        ..SimConfig::default()
    };
    for setup in Setup::ALL {
        let r = run_setup(setup, &cfg);
        assert_eq!(r.total_processed, 9, "{}", setup.label());
    }
}
