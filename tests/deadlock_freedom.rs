//! §IV-B: "Using only Spawn and Merge it is impossible to create a
//! deadlock." These tests exercise every wait pattern the runtime allows —
//! parent-waits-child, child-waits-parent, both at once, deep chains and
//! wide trees — and assert they all resolve. Each test carries a watchdog:
//! if the runtime deadlocked, the watchdog aborts the process instead of
//! hanging CI forever.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use spawn_merge::{run, MCounter, MList};

/// Run `f` under a watchdog; panics (and kills the process) if it takes
/// longer than `secs` — which would mean a deadlock.
fn with_watchdog<F: FnOnce() + Send + 'static>(secs: u64, f: F) {
    let done = Arc::new(AtomicBool::new(false));
    let done2 = Arc::clone(&done);
    let watchdog = std::thread::spawn(move || {
        let deadline = std::time::Instant::now() + Duration::from_secs(secs);
        while !done2.load(Ordering::SeqCst) {
            if std::time::Instant::now() > deadline {
                eprintln!("WATCHDOG: test exceeded {secs}s — deadlock in the runtime");
                std::process::exit(101);
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    });
    f();
    done.store(true, Ordering::SeqCst);
    watchdog.join().unwrap();
}

/// The only possible cyclic wait: child blocks in Sync (waiting for the
/// parent), parent blocks in MergeAll (waiting for the child). The merge
/// unblocks both (§IV-B).
#[test]
fn parent_child_mutual_wait_resolves() {
    with_watchdog(30, || {
        let (c, ()) = run(MCounter::new(0), |ctx| {
            ctx.spawn(|child| {
                child.data_mut().inc();
                child.sync()?; // child waits for parent
                child.data_mut().inc();
                Ok(())
            });
            ctx.merge_all(); // parent waits for child → both proceed
            ctx.merge_all();
        });
        assert_eq!(c.get(), 2);
    });
}

/// A deep chain of tasks, each syncing with its parent while the parent is
/// itself mid-sync-protocol with *its* parent: no cycle can form because
/// waits only ever point along tree edges.
#[test]
fn deep_sync_chain_resolves() {
    with_watchdog(60, || {
        fn level(depth: u32, ctx: &mut spawn_merge::TaskCtx<MCounter>) -> spawn_merge::TaskResult {
            if depth > 0 {
                ctx.spawn(move |c| level(depth - 1, c));
                // Wait for the whole subtree (one round per event: the
                // child syncs once, then completes).
                while ctx.live_children() > 0 {
                    ctx.merge_all();
                }
            }
            ctx.data_mut().inc();
            if !ctx.is_root() {
                ctx.sync()?;
            }
            Ok(())
        }
        let (c, ()) = run(MCounter::new(0), |ctx| {
            level(12, ctx).unwrap();
        });
        assert_eq!(c.get(), 13);
    });
}

/// Wide fan-out where every child syncs multiple times and the parent
/// interleaves merge_all with its own writes.
#[test]
fn wide_sync_storm_resolves() {
    with_watchdog(60, || {
        let (c, ()) = run(MCounter::new(0), |ctx| {
            for _ in 0..32 {
                ctx.spawn(|child| {
                    for _ in 0..5 {
                        child.data_mut().inc();
                        child.sync()?;
                    }
                    Ok(())
                });
            }
            for _ in 0..6 {
                ctx.data_mut().inc();
                ctx.merge_all();
            }
        });
        assert_eq!(c.get(), 32 * 5 + 6);
    });
}

/// merge_any_from_set over an empty / fully-retired set returns instead of
/// blocking — the paper's "nothing it could wait for" property, the reason
/// a deadlocked emulated semaphore degrades to a livelock, not a deadlock.
#[test]
fn merge_any_from_empty_set_never_blocks() {
    with_watchdog(30, || {
        let (_, ()) = run(MCounter::new(0), |ctx| {
            assert!(ctx.merge_any_from_set(&[]).is_none());
            let t = ctx.spawn(|_| Ok(()));
            // Merge it away, then ask again with its handle: must return
            // None immediately rather than waiting for a dead task.
            ctx.merge_all();
            assert!(ctx.merge_any_from_set(&[&t]).is_none());
        });
    });
}

/// The runtime's implicit drain at task exit must terminate even when a
/// task returns early with children in flight.
#[test]
fn implicit_drain_on_early_return_resolves() {
    with_watchdog(30, || {
        let (list, ()) = run(MList::<u32>::new(), |ctx| {
            ctx.spawn(|child| {
                for i in 0..4 {
                    child.spawn(move |gc| {
                        gc.data_mut().push(i);
                        Ok(())
                    });
                }
                // Return with 4 live grandchildren: implicit MergeAll.
                Ok(())
            });
            // Root also returns with a live child: implicit drain again.
        });
        assert_eq!(list.to_vec(), vec![0, 1, 2, 3]);
    });
}

/// Aborting tasks blocked in Sync unblocks them (rejection), so abort-time
/// teardown cannot deadlock either.
#[test]
fn abort_of_syncing_children_resolves() {
    with_watchdog(30, || {
        let (c, ()) = run(MCounter::new(0), |ctx| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    ctx.spawn(|child| {
                        loop {
                            child.data_mut().inc();
                            match child.sync() {
                                Ok(()) => continue,
                                Err(_) => return Ok(()), // aborted: wind down
                            }
                        }
                    })
                })
                .collect();
            // Let them run a couple of rounds, then abort everyone.
            ctx.merge_all();
            ctx.merge_all();
            for h in &handles {
                h.abort();
            }
            // Drain: rejected syncs make the children exit.
            while ctx.live_children() > 0 {
                ctx.merge_all();
            }
        });
        // Two merged rounds of 4 increments each; post-abort changes were
        // discarded.
        assert_eq!(c.get(), 8);
    });
}

/// The paper's semaphore-deadlock scenario, straight from §IV-B: all
/// children blocked, S empty — the system must detect it and unwind
/// rather than hang.
#[test]
fn emulated_semaphore_deadlock_is_detected_not_deadlocked() {
    with_watchdog(60, || {
        let outcome = spawn_merge::core::semaphore::run_with_semaphore(0, 4, |_i, sem| {
            sem.acquire()?;
            Ok(())
        });
        assert!(outcome.deadlocked);
        assert_eq!(outcome.stranded_workers, 4);
    });
}
