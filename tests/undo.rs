//! Undo integration: the operation logs that mergeable structures record
//! for merging are rich enough to *reverse* — `sm_ot::invert` builds the
//! undo script from a structure's public log, giving applications a
//! rollback path that composes with fork/merge.

use proptest::prelude::*;
use spawn_merge::ot::apply_all;
use spawn_merge::ot::invert::inverse_sequence;
use spawn_merge::ot::state::{ChunkTree, Rope};
use spawn_merge::{MList, MText, Mergeable};

#[test]
fn list_session_can_be_undone_from_its_log() {
    let base = vec![1u32, 2, 3];
    let mut list = MList::from_vec(base.clone());
    list.push(4);
    list.remove(0);
    list.set(1, 9);
    list.insert(0, 7);

    let undo = inverse_sequence(&ChunkTree::from_vec(base.clone()), list.log())
        .expect("log applies to base");
    let mut state = ChunkTree::from_vec(list.to_vec());
    apply_all(&mut state, &undo).unwrap();
    assert_eq!(state, base);
}

#[test]
fn merged_history_is_undoable_as_a_whole() {
    // After merging children, the parent's log is the full serialized
    // history since creation — invertible back to the original base.
    let base = vec!['a', 'b'];
    let mut parent = MList::from_vec(base.clone());
    let mut c1 = parent.fork();
    let mut c2 = parent.fork();
    c1.push('x');
    c2.remove(0);
    parent.set(1, 'B');
    parent.merge(&c1).unwrap();
    parent.merge(&c2).unwrap();

    let undo = inverse_sequence(&ChunkTree::from_vec(base.clone()), parent.log()).unwrap();
    let mut state = ChunkTree::from_vec(parent.to_vec());
    apply_all(&mut state, &undo).unwrap();
    assert_eq!(state, base);
}

#[test]
fn text_session_can_be_undone_from_its_log() {
    let base = "hello world".to_string();
    let mut doc = MText::from(base.as_str());
    doc.insert_str(5, ", cruel");
    doc.delete_range(0, 2);
    doc.push_str("!!");

    let undo = inverse_sequence(&Rope::from(base.as_str()), doc.log()).unwrap();
    let mut state = Rope::from(doc.to_string());
    apply_all(&mut state, &undo).unwrap();
    assert_eq!(state, base);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_list_sessions_are_undoable(
        base in prop::collection::vec(any::<u8>(), 0..6),
        script in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 0..12),
    ) {
        let mut list = MList::from_vec(base.clone());
        for (kind, pos, val) in script {
            match kind % 3 {
                0 => {
                    let at = (pos as usize) % (list.len() + 1);
                    list.insert(at, val);
                }
                1 if !list.is_empty() => {
                    list.remove((pos as usize) % list.len());
                }
                _ if !list.is_empty() => {
                    list.set((pos as usize) % list.len(), val);
                }
                _ => {}
            }
        }
        let undo = inverse_sequence(&ChunkTree::from_vec(base.clone()), list.log())
            .expect("own log always applies");
        let mut state = ChunkTree::from_vec(list.to_vec());
        apply_all(&mut state, &undo).unwrap();
        prop_assert_eq!(state, base);
    }
}
