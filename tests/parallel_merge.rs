//! The parallel merge engine's contract: staging sibling rebases on the
//! pool (tree-reduction `merge_all`) and field-parallel single merges
//! must be **observably indistinguishable** from the sequential
//! creation-order fold — bit-identical final state and bit-identical
//! `DeterminismAuditor` digest chains, with the full telemetry plane
//! installed, regardless of worker count, lane count, or pool warmth.
//!
//! Debug builds double every staged commit with the sequential rebase
//! (see `Versioned::commit_staged`), so each test here is also a
//! differential oracle of the staged runs themselves.
//!
//! The recorder slot and the parallel-merge knobs are process-global, so
//! every test serializes on one mutex and restores defaults on exit.

#![cfg(not(feature = "serial-merge"))]

use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use proptest::prelude::*;
use spawn_merge::mergeable_struct;
use spawn_merge::obs::{
    self, DeterminismAuditor, FlightRecorder, Metrics, MultiRecorder, Recorder,
};
use spawn_merge::{
    run, run_with_pool, run_with_store, set_field_parallel_min_ops, set_parallel_merge_lanes,
    set_parallel_merge_min_children, set_parallel_split_min_ops, MCounter, MList, MText, Pool,
    Store, StoreOptions,
};

static SERIAL: Mutex<()> = Mutex::new(());

/// Serialize on the global knobs + recorder slot, restoring the default
/// configuration (and uninstalling any recorder) when the test ends —
/// even on panic, so one failure cannot cascade.
struct KnobGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

fn serial() -> KnobGuard {
    KnobGuard(SERIAL.lock().unwrap_or_else(PoisonError::into_inner))
}

impl Drop for KnobGuard {
    fn drop(&mut self) {
        set_parallel_merge_min_children(Some(8));
        set_parallel_merge_lanes(0);
        set_field_parallel_min_ops(Some(512));
        set_parallel_split_min_ops(Some(65536));
        obs::uninstall();
    }
}

/// Install the full telemetry plane (metrics + flight recorder + a fresh
/// auditor), run `f`, uninstall, and return the auditor digest.
fn with_plane<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let auditor = Arc::new(DeterminismAuditor::new());
    let sinks: Vec<Arc<dyn Recorder>> = vec![
        Arc::new(Metrics::new()),
        Arc::new(FlightRecorder::new(64)),
        auditor.clone(),
    ];
    obs::install(Arc::new(MultiRecorder::new(sinks)));
    let out = f();
    obs::uninstall();
    (out, auditor.digest())
}

/// One scripted child mutation. `Remove` and `Set` force the rebase off
/// the insert-only delta lane onto the serial staging lane, so scripts
/// mixing them sweep both lanes (and the lane-selection gates).
#[derive(Debug, Clone)]
enum Cmd {
    Push(u8),
    Insert(usize, u8),
    Remove(usize),
    Set(usize, u8),
}

fn apply(list: &mut MList<u8>, cmds: &[Cmd]) {
    for c in cmds {
        match *c {
            Cmd::Push(v) => list.push(v),
            Cmd::Insert(i, v) => {
                let at = if list.is_empty() {
                    0
                } else {
                    i % (list.len() + 1)
                };
                list.insert(at, v);
            }
            Cmd::Remove(i) => {
                if !list.is_empty() {
                    list.remove(i % list.len());
                }
            }
            Cmd::Set(i, v) => {
                if !list.is_empty() {
                    list.set(i % list.len(), v);
                }
            }
        }
    }
}

fn scripts() -> impl Strategy<Value = Vec<Vec<Cmd>>> {
    prop::collection::vec(
        prop::collection::vec(
            prop_oneof![
                any::<u8>().prop_map(Cmd::Push),
                any::<u8>().prop_map(Cmd::Push),
                (any::<usize>(), any::<u8>()).prop_map(|(i, v)| Cmd::Insert(i, v)),
                any::<usize>().prop_map(Cmd::Remove),
                (any::<usize>(), any::<u8>()).prop_map(|(i, v)| Cmd::Set(i, v)),
            ],
            0..8,
        ),
        1..14,
    )
}

/// Run one fan-out program: each script drives one child, the parent
/// waits long enough for completions to queue up (so staging actually
/// has a ready batch to bite on), then merges all.
fn run_fanout(scripts: &[Vec<Cmd>], settle: bool) -> Vec<u8> {
    let scripts = scripts.to_vec();
    let (list, ()) = run(MList::from_iter([1u8, 2, 3]), move |ctx| {
        for s in scripts {
            ctx.spawn(move |c| {
                apply(c.data_mut(), &s);
                Ok(())
            });
        }
        if settle {
            std::thread::sleep(std::time::Duration::from_millis(30));
        }
        ctx.data_mut().push(99);
        ctx.merge_all();
    });
    list.to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The differential sweep of the acceptance criteria: arbitrary op
    /// mixes and fan-outs, sequential fold vs staged fold, telemetry
    /// plane installed — final state and digest chains must be
    /// bit-identical.
    #[test]
    fn staged_merge_all_is_digest_identical_to_sequential(fan in scripts()) {
        let guard = serial();
        set_parallel_merge_min_children(None);
        let (seq_state, seq_digest) = with_plane(|| run_fanout(&fan, false));
        set_parallel_merge_min_children(Some(2));
        set_parallel_merge_lanes(3);
        let (par_state, par_digest) = with_plane(|| run_fanout(&fan, true));
        drop(guard);
        prop_assert_eq!(seq_state, par_state);
        prop_assert_eq!(seq_digest, par_digest);
    }
}

/// A large all-ready fan-out must actually take the staged path (the
/// `MergeStaged` telemetry event proves it) and still produce the
/// sequential digest.
#[test]
fn large_fanout_stages_and_matches_sequential_digest() {
    let _guard = serial();
    let program = || {
        let (list, ()) = run(MList::<u32>::new(), |ctx| {
            for i in 0..32u32 {
                ctx.spawn(move |c| {
                    for j in 0..8 {
                        c.data_mut().push(i * 100 + j);
                    }
                    Ok(())
                });
            }
            // Let every completion land so the whole batch is stageable.
            std::thread::sleep(std::time::Duration::from_millis(120));
            ctx.merge_all();
        });
        list.to_vec()
    };

    set_parallel_merge_min_children(None);
    let (seq_state, seq_digest) = with_plane(program);

    set_parallel_merge_min_children(Some(4));
    set_parallel_merge_lanes(4);
    let metrics = Arc::new(Metrics::new());
    let auditor = Arc::new(DeterminismAuditor::new());
    let sinks: Vec<Arc<dyn Recorder>> = vec![metrics.clone(), auditor.clone()];
    obs::install(Arc::new(MultiRecorder::new(sinks)));
    let par_state = program();
    obs::uninstall();

    let snap = metrics.snapshot();
    assert!(
        snap.merges_staged >= 1,
        "a 32-child all-ready merge_all must stage at least one batch"
    );
    assert!(
        snap.merge_staged_children >= 4,
        "the staged batch must cover at least the threshold"
    );
    assert_eq!(seq_state, par_state);
    assert_eq!(seq_digest, auditor.digest());
    assert_eq!(par_state.len(), 32 * 8);
}

mergeable_struct! {
    /// Two independently-versioned fields for the field-parallel seam.
    #[derive(Debug, Clone)]
    struct Doc {
        items: MList<u8>,
        notes: MText,
    }
}

/// Field-parallel single merges (`merge_with_exec`) must match the plain
/// per-field fold bit for bit, state and digest.
#[test]
fn field_parallel_struct_merge_matches_sequential() {
    let _guard = serial();
    let program = || {
        let init = Doc {
            items: MList::from_iter([0u8]),
            notes: MText::from("base"),
        };
        let (doc, ()) = run(init, |ctx| {
            for i in 0..6u8 {
                ctx.spawn(move |c| {
                    for j in 0..20u8 {
                        c.data_mut().items.push(i * 20 + j);
                    }
                    c.data_mut().notes.insert_str(0, format!("[{i}]"));
                    Ok(())
                });
            }
            ctx.merge_all();
        });
        (doc.items.to_vec(), doc.notes.to_string())
    };

    // Sequential: both parallel paths off.
    set_parallel_merge_min_children(None);
    set_field_parallel_min_ops(None);
    let (seq_out, seq_digest) = with_plane(program);

    // Field-parallel: every non-trivial field merges on its own worker
    // (threshold 1 op); batch staging stays off to isolate the seam.
    set_field_parallel_min_ops(Some(1));
    let (par_out, par_digest) = with_plane(program);

    assert_eq!(seq_out, par_out);
    assert_eq!(seq_digest, par_digest);
}

/// Satellite: merge determinism under worker-count variation. The same
/// program, staged with 1, 2, and `num_cpus` reduction lanes on pools of
/// different warmth, must produce one digest chain.
#[test]
fn digest_is_identical_across_lanes_and_pool_warmth() {
    let _guard = serial();
    let ncpus = std::thread::available_parallelism().map_or(4, |n| n.get().max(2));
    let run_once = |lanes: usize, warm: usize| {
        set_parallel_merge_min_children(Some(2));
        set_parallel_merge_lanes(lanes);
        let pool = Pool::new();
        for _ in 0..warm {
            pool.execute(|| {});
        }
        with_plane(|| {
            let (data, ()) = run_with_pool((MList::<u8>::new(), MCounter::new(0)), pool, |ctx| {
                for i in 0..12u8 {
                    ctx.spawn(move |c| {
                        c.data_mut().0.push(i);
                        c.data_mut().1.add(i64::from(i));
                        Ok(())
                    });
                }
                std::thread::sleep(std::time::Duration::from_millis(60));
                ctx.merge_all();
            });
            (data.0.to_vec(), data.1.get())
        })
    };
    let baseline = run_once(1, 0);
    for (lanes, warm) in [(2, 0), (ncpus, 0), (1, 16), (ncpus, 16)] {
        let got = run_once(lanes, warm);
        assert_eq!(
            got, baseline,
            "lanes={lanes} warm={warm} changed the state or digest"
        );
    }
    assert_eq!(baseline.0 .1, (0..12).map(i64::from).sum::<i64>());
}

/// Satellite regression: a duplicated handle in `merge_all_from_set`
/// must count once — before the dedup fix the second occurrence waited
/// forever for a second event from a child that only ever sends one.
#[test]
fn merge_all_from_set_dedups_duplicate_handles() {
    let _guard = serial();
    let (list, reports) = run(MList::<u32>::new(), |ctx| {
        let a = ctx.spawn(|c| {
            c.data_mut().push(1);
            Ok(())
        });
        let b = ctx.spawn(|c| {
            c.data_mut().push(2);
            Ok(())
        });
        let report = ctx.merge_all_from_set(&[&a, &a, &b, &a]);
        let again = ctx.merge_all_from_set(&[&a, &b]);
        (report, again)
    });
    let (report, again) = reports;
    assert_eq!(
        report.children.len(),
        2,
        "each duplicated handle merges exactly once"
    );
    assert!(report.all_merged());
    assert_eq!(report.completed_count(), 2);
    assert!(
        again.children.is_empty(),
        "retired children are skipped on the next call"
    );
    assert_eq!(
        list.to_vec(),
        vec![1, 2],
        "argument order is the merge order"
    );
}

/// Install metrics + auditor, run `f`, and return its output with the
/// metrics snapshot and the auditor digest — for tests that must prove
/// *which* path ran, not just that the result matches.
fn with_metrics_plane<T>(f: impl FnOnce() -> T) -> (T, spawn_merge::obs::MetricsSnapshot, u64) {
    let metrics = Arc::new(Metrics::new());
    let auditor = Arc::new(DeterminismAuditor::new());
    let sinks: Vec<Arc<dyn Recorder>> = vec![metrics.clone(), auditor.clone()];
    obs::install(Arc::new(MultiRecorder::new(sinks)));
    let out = f();
    obs::uninstall();
    (out, metrics.snapshot(), auditor.digest())
}

/// Tentpole: a fan-out whose children mix inserts and deletes must take
/// the staged path (previously the `insert_only` gate forced the serial
/// lane) and stay digest-identical to the sequential fold.
#[test]
fn mixed_delete_fanout_stages_and_matches_sequential_digest() {
    let _guard = serial();
    let program = || {
        let (list, ()) = run(MList::from_iter(0..32u32), |ctx| {
            for i in 0..24u32 {
                ctx.spawn(move |c| {
                    for j in 0..6 {
                        let at = ((i * 7 + j * 13) as usize) % (c.data().len() + 1);
                        c.data_mut().insert(at, i * 100 + j);
                    }
                    // Every third child also deletes, making its log
                    // shape Mixed rather than InsertOnly.
                    if i % 3 == 0 {
                        let at = (i as usize * 5) % c.data().len();
                        c.data_mut().remove(at);
                    }
                    Ok(())
                });
            }
            std::thread::sleep(std::time::Duration::from_millis(120));
            ctx.data_mut().push(u32::MAX);
            ctx.merge_all();
        });
        list.to_vec()
    };

    set_parallel_merge_min_children(None);
    let (seq_state, seq_digest) = with_plane(program);

    set_parallel_merge_min_children(Some(4));
    set_parallel_merge_lanes(4);
    let (par_state, snap, par_digest) = with_metrics_plane(program);

    assert!(
        snap.merges_staged >= 1,
        "a mixed insert/delete batch must stage, not fall back to the serial fold"
    );
    assert_eq!(seq_state, par_state);
    assert_eq!(seq_digest, par_digest);
}

/// Tentpole: the runtime mirror of the order-sensitivity fixture in
/// `sm_ot::delta` — a committed delete closes the gap between an
/// incoming insert and a later committed insert, so the staged mixed
/// lane must poison that child (and the batch suffix) back to the plain
/// sequential kernel, counted in `sm_rebase_screen_rejects_total`, with
/// the digest chain still bit-identical.
#[test]
fn screened_mixed_batch_falls_back_per_batch_and_matches_sequential() {
    let _guard = serial();
    let program = || {
        let (text, ()) = run(MText::from("abcd"), |ctx| {
            // Child 0 commits first: delete, insert "XY", delete — the
            // committed side of the screened fixture.
            ctx.spawn(|c| {
                c.data_mut().delete_range(1, 1);
                c.data_mut().insert_str(2, "XY");
                c.data_mut().delete_range(1, 1);
                Ok(())
            });
            // Child 1's delta (delete at 2, insert "q" at 1) is
            // order-sensitive against child 0's committed composite.
            ctx.spawn(|c| {
                c.data_mut().delete_range(2, 1);
                c.data_mut().insert_str(1, "q");
                Ok(())
            });
            std::thread::sleep(std::time::Duration::from_millis(60));
            // Parent edit far to the right keeps the committed slice
            // non-empty (delta-lane qualification) without disturbing
            // the low-position collision.
            let end = ctx.data().char_len();
            ctx.data_mut().insert_str(end, "Z");
            ctx.merge_all();
        });
        text.to_string()
    };

    set_parallel_merge_min_children(None);
    let (seq_state, seq_digest) = with_plane(program);

    set_parallel_merge_min_children(Some(2));
    set_parallel_merge_lanes(2);
    let (par_state, snap, par_digest) = with_metrics_plane(program);

    assert!(
        snap.merges_staged >= 1,
        "the two-child batch must stage on the mixed delta lane"
    );
    assert!(
        snap.rebase_screen_rejects_total >= 1,
        "the order-sensitive child must fall back through the poison protocol"
    );
    assert_eq!(seq_state, par_state);
    assert_eq!(seq_digest, par_digest);
}

/// Tentpole: conditional `merge_all_with` batches stage speculatively;
/// dismissed children roll the speculation back (drop the stage,
/// re-stage the remainder) and the committed outcome — state, rejected
/// set, and digest chain — is exactly the sequential one.
#[test]
fn conditional_merge_all_stages_speculatively_and_matches_sequential() {
    let _guard = serial();
    let program = || {
        let (list, report) = run(MList::from_iter([1u32, 2, 3]), |ctx| {
            for i in 0..16u32 {
                ctx.spawn(move |c| {
                    for j in 0..4 {
                        c.data_mut().push(i * 10 + j);
                    }
                    Ok(())
                });
            }
            std::thread::sleep(std::time::Duration::from_millis(120));
            ctx.data_mut().push(500);
            // Deterministic on the child's own data: rejects roughly a
            // third of the children, scattered through the batch, so
            // staging must survive several rollback/re-stage rounds.
            ctx.merge_all_with(&|d: &MList<u32>| d.to_vec().iter().sum::<u32>() % 3 != 0)
        });
        (list.to_vec(), report.merged_count())
    };

    set_parallel_merge_min_children(None);
    let ((seq_state, seq_merged), seq_digest) = with_plane(program);

    set_parallel_merge_min_children(Some(2));
    set_parallel_merge_lanes(3);
    let ((par_state, par_merged), snap, par_digest) = with_metrics_plane(program);

    assert!(
        snap.merges_staged >= 1,
        "a conditional merge_all must stage speculatively, not fold sequentially"
    );
    assert!(
        seq_merged < 16,
        "the condition must actually reject some children for this test to bite"
    );
    assert_eq!(seq_merged, par_merged);
    assert_eq!(seq_state, par_state);
    assert_eq!(seq_digest, par_digest);
}

/// Tentpole: a durable `CommitSink` no longer forces the sequential
/// fold — staged batches run with the journal installed (the serial
/// lane mirrors the per-commit seal), the digest chain matches the
/// sequential run, and recovery replays both journals to the same
/// state.
#[test]
fn staged_merge_coexists_with_store_sink_and_recovers() {
    let _guard = serial();
    let scratch = |tag: &str| {
        let dir = std::env::temp_dir().join(format!(
            "sm-parallel-merge-sink-{}-{tag}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    };
    let program = |dir: &std::path::Path| {
        let store = Store::open(dir, StoreOptions::default()).unwrap();
        let (list, ()) = run_with_store(MList::<u32>::new(), Pool::new(), &store, |ctx| {
            for i in 0..16u32 {
                ctx.spawn(move |c| {
                    for j in 0..6 {
                        c.data_mut().push(i * 10 + j);
                    }
                    if i % 4 == 0 {
                        let len = c.data().len();
                        c.data_mut().remove(len - 1);
                    }
                    Ok(())
                });
            }
            std::thread::sleep(std::time::Duration::from_millis(120));
            ctx.data_mut().push(9999);
            ctx.merge_all();
        })
        .unwrap();
        list.to_vec()
    };

    let dir_seq = scratch("seq");
    set_parallel_merge_min_children(None);
    let (seq_state, seq_digest) = with_plane(|| program(&dir_seq));

    let dir_par = scratch("par");
    set_parallel_merge_min_children(Some(4));
    set_parallel_merge_lanes(3);
    let (par_state, snap, par_digest) = with_metrics_plane(|| program(&dir_par));

    assert!(
        snap.merges_staged >= 1,
        "a sink must no longer disqualify the batch from staging"
    );
    assert_eq!(seq_state, par_state);
    assert_eq!(seq_digest, par_digest);

    // Both journals must replay to the bit-identical live state.
    for (dir, state) in [(&dir_seq, &seq_state), (&dir_par, &par_state)] {
        let reopened = Store::open(dir, StoreOptions::default()).unwrap();
        let rec = reopened
            .recover::<MList<u32>>()
            .unwrap()
            .expect("journal exists");
        assert_eq!(&rec.data.to_vec(), state);
        let _ = std::fs::remove_dir_all(dir);
    }
}

/// Tentpole: one huge child log split across segment workers and fused
/// in order must be indistinguishable — state and digest — from both
/// the unsplit staged run and the sequential fold.
#[test]
fn huge_child_split_fuse_matches_unsplit_and_sequential_digests() {
    let _guard = serial();
    let program = || {
        let (list, ()) = run(MList::from_iter(0..8u32), |ctx| {
            for i in 0..4u32 {
                ctx.spawn(move |c| {
                    for j in 0..1500u32 {
                        let at = ((i * 7 + j * 13) as usize) % (c.data().len() + 1);
                        c.data_mut().insert(at, i * 10_000 + j);
                    }
                    if i % 2 == 0 {
                        let at = (i as usize * 11) % c.data().len();
                        c.data_mut().remove(at);
                    }
                    Ok(())
                });
            }
            std::thread::sleep(std::time::Duration::from_millis(150));
            ctx.data_mut().push(u32::MAX);
            ctx.merge_all();
        });
        list.to_vec()
    };

    set_parallel_merge_min_children(None);
    let (seq_state, seq_digest) = with_plane(program);

    // Staged, splitting disabled: the whole 1500-op fold on one worker.
    set_parallel_merge_min_children(Some(2));
    set_parallel_merge_lanes(4);
    set_parallel_split_min_ops(None);
    let (unsplit_state, unsplit_digest) = with_plane(program);

    // Staged with split/fuse biting on every child log.
    set_parallel_split_min_ops(Some(256));
    let (split_state, snap, split_digest) = with_metrics_plane(program);

    assert!(snap.merges_staged >= 1, "the batch must stage");
    assert_eq!(seq_state, unsplit_state);
    assert_eq!(seq_state, split_state);
    assert_eq!(seq_digest, unsplit_digest);
    assert_eq!(seq_digest, split_digest);
}
