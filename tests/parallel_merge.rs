//! The parallel merge engine's contract: staging sibling rebases on the
//! pool (tree-reduction `merge_all`) and field-parallel single merges
//! must be **observably indistinguishable** from the sequential
//! creation-order fold — bit-identical final state and bit-identical
//! `DeterminismAuditor` digest chains, with the full telemetry plane
//! installed, regardless of worker count, lane count, or pool warmth.
//!
//! Debug builds double every staged commit with the sequential rebase
//! (see `Versioned::commit_staged`), so each test here is also a
//! differential oracle of the staged runs themselves.
//!
//! The recorder slot and the parallel-merge knobs are process-global, so
//! every test serializes on one mutex and restores defaults on exit.

#![cfg(not(feature = "serial-merge"))]

use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use proptest::prelude::*;
use spawn_merge::mergeable_struct;
use spawn_merge::obs::{
    self, DeterminismAuditor, FlightRecorder, Metrics, MultiRecorder, Recorder,
};
use spawn_merge::{
    run, run_with_pool, set_field_parallel_min_ops, set_parallel_merge_lanes,
    set_parallel_merge_min_children, MCounter, MList, MText, Pool,
};

static SERIAL: Mutex<()> = Mutex::new(());

/// Serialize on the global knobs + recorder slot, restoring the default
/// configuration (and uninstalling any recorder) when the test ends —
/// even on panic, so one failure cannot cascade.
struct KnobGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

fn serial() -> KnobGuard {
    KnobGuard(SERIAL.lock().unwrap_or_else(PoisonError::into_inner))
}

impl Drop for KnobGuard {
    fn drop(&mut self) {
        set_parallel_merge_min_children(Some(8));
        set_parallel_merge_lanes(0);
        set_field_parallel_min_ops(Some(512));
        obs::uninstall();
    }
}

/// Install the full telemetry plane (metrics + flight recorder + a fresh
/// auditor), run `f`, uninstall, and return the auditor digest.
fn with_plane<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let auditor = Arc::new(DeterminismAuditor::new());
    let sinks: Vec<Arc<dyn Recorder>> = vec![
        Arc::new(Metrics::new()),
        Arc::new(FlightRecorder::new(64)),
        auditor.clone(),
    ];
    obs::install(Arc::new(MultiRecorder::new(sinks)));
    let out = f();
    obs::uninstall();
    (out, auditor.digest())
}

/// One scripted child mutation. `Remove` and `Set` force the rebase off
/// the insert-only delta lane onto the serial staging lane, so scripts
/// mixing them sweep both lanes (and the lane-selection gates).
#[derive(Debug, Clone)]
enum Cmd {
    Push(u8),
    Insert(usize, u8),
    Remove(usize),
    Set(usize, u8),
}

fn apply(list: &mut MList<u8>, cmds: &[Cmd]) {
    for c in cmds {
        match *c {
            Cmd::Push(v) => list.push(v),
            Cmd::Insert(i, v) => {
                let at = if list.is_empty() {
                    0
                } else {
                    i % (list.len() + 1)
                };
                list.insert(at, v);
            }
            Cmd::Remove(i) => {
                if !list.is_empty() {
                    list.remove(i % list.len());
                }
            }
            Cmd::Set(i, v) => {
                if !list.is_empty() {
                    list.set(i % list.len(), v);
                }
            }
        }
    }
}

fn scripts() -> impl Strategy<Value = Vec<Vec<Cmd>>> {
    prop::collection::vec(
        prop::collection::vec(
            prop_oneof![
                any::<u8>().prop_map(Cmd::Push),
                any::<u8>().prop_map(Cmd::Push),
                (any::<usize>(), any::<u8>()).prop_map(|(i, v)| Cmd::Insert(i, v)),
                any::<usize>().prop_map(Cmd::Remove),
                (any::<usize>(), any::<u8>()).prop_map(|(i, v)| Cmd::Set(i, v)),
            ],
            0..8,
        ),
        1..14,
    )
}

/// Run one fan-out program: each script drives one child, the parent
/// waits long enough for completions to queue up (so staging actually
/// has a ready batch to bite on), then merges all.
fn run_fanout(scripts: &[Vec<Cmd>], settle: bool) -> Vec<u8> {
    let scripts = scripts.to_vec();
    let (list, ()) = run(MList::from_iter([1u8, 2, 3]), move |ctx| {
        for s in scripts {
            ctx.spawn(move |c| {
                apply(c.data_mut(), &s);
                Ok(())
            });
        }
        if settle {
            std::thread::sleep(std::time::Duration::from_millis(30));
        }
        ctx.data_mut().push(99);
        ctx.merge_all();
    });
    list.to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The differential sweep of the acceptance criteria: arbitrary op
    /// mixes and fan-outs, sequential fold vs staged fold, telemetry
    /// plane installed — final state and digest chains must be
    /// bit-identical.
    #[test]
    fn staged_merge_all_is_digest_identical_to_sequential(fan in scripts()) {
        let guard = serial();
        set_parallel_merge_min_children(None);
        let (seq_state, seq_digest) = with_plane(|| run_fanout(&fan, false));
        set_parallel_merge_min_children(Some(2));
        set_parallel_merge_lanes(3);
        let (par_state, par_digest) = with_plane(|| run_fanout(&fan, true));
        drop(guard);
        prop_assert_eq!(seq_state, par_state);
        prop_assert_eq!(seq_digest, par_digest);
    }
}

/// A large all-ready fan-out must actually take the staged path (the
/// `MergeStaged` telemetry event proves it) and still produce the
/// sequential digest.
#[test]
fn large_fanout_stages_and_matches_sequential_digest() {
    let _guard = serial();
    let program = || {
        let (list, ()) = run(MList::<u32>::new(), |ctx| {
            for i in 0..32u32 {
                ctx.spawn(move |c| {
                    for j in 0..8 {
                        c.data_mut().push(i * 100 + j);
                    }
                    Ok(())
                });
            }
            // Let every completion land so the whole batch is stageable.
            std::thread::sleep(std::time::Duration::from_millis(120));
            ctx.merge_all();
        });
        list.to_vec()
    };

    set_parallel_merge_min_children(None);
    let (seq_state, seq_digest) = with_plane(program);

    set_parallel_merge_min_children(Some(4));
    set_parallel_merge_lanes(4);
    let metrics = Arc::new(Metrics::new());
    let auditor = Arc::new(DeterminismAuditor::new());
    let sinks: Vec<Arc<dyn Recorder>> = vec![metrics.clone(), auditor.clone()];
    obs::install(Arc::new(MultiRecorder::new(sinks)));
    let par_state = program();
    obs::uninstall();

    let snap = metrics.snapshot();
    assert!(
        snap.merges_staged >= 1,
        "a 32-child all-ready merge_all must stage at least one batch"
    );
    assert!(
        snap.merge_staged_children >= 4,
        "the staged batch must cover at least the threshold"
    );
    assert_eq!(seq_state, par_state);
    assert_eq!(seq_digest, auditor.digest());
    assert_eq!(par_state.len(), 32 * 8);
}

mergeable_struct! {
    /// Two independently-versioned fields for the field-parallel seam.
    #[derive(Debug, Clone)]
    struct Doc {
        items: MList<u8>,
        notes: MText,
    }
}

/// Field-parallel single merges (`merge_with_exec`) must match the plain
/// per-field fold bit for bit, state and digest.
#[test]
fn field_parallel_struct_merge_matches_sequential() {
    let _guard = serial();
    let program = || {
        let init = Doc {
            items: MList::from_iter([0u8]),
            notes: MText::from("base"),
        };
        let (doc, ()) = run(init, |ctx| {
            for i in 0..6u8 {
                ctx.spawn(move |c| {
                    for j in 0..20u8 {
                        c.data_mut().items.push(i * 20 + j);
                    }
                    c.data_mut().notes.insert_str(0, format!("[{i}]"));
                    Ok(())
                });
            }
            ctx.merge_all();
        });
        (doc.items.to_vec(), doc.notes.to_string())
    };

    // Sequential: both parallel paths off.
    set_parallel_merge_min_children(None);
    set_field_parallel_min_ops(None);
    let (seq_out, seq_digest) = with_plane(program);

    // Field-parallel: every non-trivial field merges on its own worker
    // (threshold 1 op); batch staging stays off to isolate the seam.
    set_field_parallel_min_ops(Some(1));
    let (par_out, par_digest) = with_plane(program);

    assert_eq!(seq_out, par_out);
    assert_eq!(seq_digest, par_digest);
}

/// Satellite: merge determinism under worker-count variation. The same
/// program, staged with 1, 2, and `num_cpus` reduction lanes on pools of
/// different warmth, must produce one digest chain.
#[test]
fn digest_is_identical_across_lanes_and_pool_warmth() {
    let _guard = serial();
    let ncpus = std::thread::available_parallelism().map_or(4, |n| n.get().max(2));
    let run_once = |lanes: usize, warm: usize| {
        set_parallel_merge_min_children(Some(2));
        set_parallel_merge_lanes(lanes);
        let pool = Pool::new();
        for _ in 0..warm {
            pool.execute(|| {});
        }
        with_plane(|| {
            let (data, ()) = run_with_pool((MList::<u8>::new(), MCounter::new(0)), pool, |ctx| {
                for i in 0..12u8 {
                    ctx.spawn(move |c| {
                        c.data_mut().0.push(i);
                        c.data_mut().1.add(i64::from(i));
                        Ok(())
                    });
                }
                std::thread::sleep(std::time::Duration::from_millis(60));
                ctx.merge_all();
            });
            (data.0.to_vec(), data.1.get())
        })
    };
    let baseline = run_once(1, 0);
    for (lanes, warm) in [(2, 0), (ncpus, 0), (1, 16), (ncpus, 16)] {
        let got = run_once(lanes, warm);
        assert_eq!(
            got, baseline,
            "lanes={lanes} warm={warm} changed the state or digest"
        );
    }
    assert_eq!(baseline.0 .1, (0..12).map(i64::from).sum::<i64>());
}

/// Satellite regression: a duplicated handle in `merge_all_from_set`
/// must count once — before the dedup fix the second occurrence waited
/// forever for a second event from a child that only ever sends one.
#[test]
fn merge_all_from_set_dedups_duplicate_handles() {
    let _guard = serial();
    let (list, reports) = run(MList::<u32>::new(), |ctx| {
        let a = ctx.spawn(|c| {
            c.data_mut().push(1);
            Ok(())
        });
        let b = ctx.spawn(|c| {
            c.data_mut().push(2);
            Ok(())
        });
        let report = ctx.merge_all_from_set(&[&a, &a, &b, &a]);
        let again = ctx.merge_all_from_set(&[&a, &b]);
        (report, again)
    });
    let (report, again) = reports;
    assert_eq!(
        report.children.len(),
        2,
        "each duplicated handle merges exactly once"
    );
    assert!(report.all_merged());
    assert_eq!(report.completed_count(), 2);
    assert!(
        again.children.is_empty(),
        "retired children are skipped on the next call"
    );
    assert_eq!(
        list.to_vec(),
        vec![1, 2],
        "argument order is the merge order"
    );
}
