//! sm-store integration: journal/recover roundtrips, snapshot GC, the
//! crash-injection harness, tamper detection, and the mid-stream crash
//! convergence theorem.
//!
//! The property under test is the store's *verified prefix or nothing*
//! contract: whatever a crash leaves on disk, recovery either
//! reconstructs a digest-verified prefix of the journaled commit
//! sequence (bit-identical to the original run's state at that commit)
//! or fails closed with an error — it never panics and never fabricates
//! state. Determinism then upgrades prefix recovery to full convergence:
//! resuming a deterministic program from a recovered round-boundary state
//! reproduces the uninterrupted run's final state exactly.

use std::fs;
use std::path::{Path, PathBuf};

use spawn_merge::net::frame::{encode_frame, Frames};
use spawn_merge::netsim::workload::Lcg;
use spawn_merge::obs::TaskPath;
use spawn_merge::store::wal::Record;
use spawn_merge::{
    run, run_with_store, FsyncPolicy, MCounter, MList, MText, Pool, RetentionPolicy, Store,
    StoreError, StoreOptions, TaskAbort,
};

/// A fresh, empty scratch directory unique to this process and `tag`.
/// The repo's dependency set has no tempdir crate, so tests hand-roll
/// one under the OS temp root.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sm-store-test-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// Copy every regular file of `src` into a fresh sibling directory, so a
/// "crash image" can be mutilated without disturbing the live store.
fn copy_dir(src: &Path, tag: &str) -> PathBuf {
    let dst = scratch_dir(tag);
    for entry in fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
    dst
}

/// The single WAL segment of a store directory (panics if there is not
/// exactly one — callers arrange options so rotation never triggers).
fn single_wal(dir: &Path) -> PathBuf {
    let mut wals: Vec<PathBuf> = fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-"))
        })
        .collect();
    assert_eq!(wals.len(), 1, "expected a single WAL segment in {dir:?}");
    wals.pop().unwrap()
}

type Doc = (MList<u32>, MText, MCounter);

fn doc_digest(doc: &Doc) -> String {
    format!("{:?}|{}|{}", doc.0.to_vec(), doc.1, doc.2.get())
}

/// One deterministic multi-structure round: three children edit forks of
/// the doc, the parent merges them in creation order. Only the root ever
/// touches the counter — tests use it as the round number.
fn doc_round(ctx: &mut spawn_merge::TaskCtx<Doc>, round: u64) {
    for editor in 0..3u64 {
        ctx.spawn(move |c| {
            let mut rng = Lcg::new(round * 31 + editor + 1);
            let (list, text, _count) = c.data_mut();
            list.push((rng.next() % 1000) as u32);
            let pos = (rng.next() as usize) % (text.char_len() + 1);
            text.insert_str(pos, format!("{}", rng.next() % 10));
            Ok(())
        });
    }
    ctx.merge_all();
}

#[test]
fn journal_then_recover_restores_exact_state() {
    let dir = scratch_dir("roundtrip");
    let store = Store::open(&dir, StoreOptions::default()).unwrap();
    let initial: Doc = (MList::new(), MText::from("seed:"), MCounter::new(10));
    let (live, ()) = run_with_store(initial, Pool::new(), &store, |ctx| {
        for round in 0..8 {
            doc_round(ctx, round);
            // Root-local edits between merge rounds exercise the
            // trailing-ops export paths.
            ctx.data_mut().2.add(1);
        }
    })
    .unwrap();

    let reopened = Store::open(&dir, StoreOptions::default()).unwrap();
    let rec = reopened.recover::<Doc>().unwrap().expect("journal exists");
    assert_eq!(doc_digest(&rec.data), doc_digest(&live));
    assert_eq!(rec.snapshot_seq, 0, "no snapshot was requested");
    assert_eq!(rec.torn_bytes, 0, "clean shutdown leaves no torn tail");
    assert!(rec.replayed_ops > 0);

    // Recovery primes the store: journaling continues seamlessly and a
    // second recovery sees the continuation.
    let (live2, ()) = run_with_store(rec.data, Pool::new(), &reopened, |ctx| {
        doc_round(ctx, 99);
    })
    .unwrap();
    let third = Store::open(&dir, StoreOptions::default()).unwrap();
    let rec2 = third.recover::<Doc>().unwrap().expect("journal exists");
    assert_eq!(doc_digest(&rec2.data), doc_digest(&live2));
    assert!(rec2.last_seq > rec.last_seq);
}

#[test]
fn empty_directory_recovers_to_none() {
    let dir = scratch_dir("empty");
    let store = Store::open(&dir, StoreOptions::default()).unwrap();
    assert!(store.recover::<MList<u32>>().unwrap().is_none());
}

#[test]
fn snapshots_garbage_collect_segments_and_still_recover() {
    let dir = scratch_dir("snapshot-gc");
    let options = StoreOptions {
        fsync: FsyncPolicy::EveryN(8),
        snapshot_every_ops: 5,
        ..StoreOptions::default()
    };
    let store = Store::open(&dir, options.clone()).unwrap();
    let (live, ()) = run_with_store(
        (MList::new(), MText::new(), MCounter::new(0)),
        Pool::new(),
        &store,
        |ctx| {
            for round in 0..10 {
                doc_round(ctx, round);
            }
        },
    )
    .unwrap();

    // Automatic snapshots fired and GC'd covered history: the genesis
    // snapshot is gone and some snapshot with seq > 0 exists.
    let names: Vec<String> = fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    assert!(
        names
            .iter()
            .any(|n| n.starts_with("snap-") && !n.ends_with("00000000000000000000")),
        "expected a non-genesis snapshot, found {names:?}"
    );
    assert!(
        !names.contains(&"snap-00000000000000000000".to_string()),
        "genesis snapshot should be GC'd, found {names:?}"
    );

    let reopened = Store::open(&dir, options).unwrap();
    let rec = reopened.recover::<Doc>().unwrap().expect("journal exists");
    assert!(rec.snapshot_seq > 0, "recovery starts from a real snapshot");
    assert_eq!(doc_digest(&rec.data), doc_digest(&live));
}

#[test]
fn gc_after_abort_round_cannot_outrun_the_journal() {
    // The adversarial GC schedule: a commit, then root-local ops, then a
    // young fork past them, then a GC round triggered by an *aborted*
    // child (no commit). The fork watermark lies beyond the last commit,
    // so without the sink's pre-truncation hook the root-local ops would
    // be dropped before ever reaching the WAL.
    let dir = scratch_dir("gc-abort");
    let store = Store::open(&dir, StoreOptions::default()).unwrap();
    let (live, ()) = run_with_store(MList::<u32>::new(), Pool::new(), &store, |ctx| {
        let a = ctx.spawn(|c| {
            c.data_mut().push(1);
            Ok(())
        });
        ctx.merge_all_from_set(&[&a]); // commit 1
        ctx.data_mut().push(2); // root-local, journaled by no commit yet
        let _b = ctx.spawn(|c| {
            c.data_mut().push(3); // forked past the root-local op
            Ok(())
        });
        let doomed = ctx.spawn(|_| -> Result<(), TaskAbort> { Err(TaskAbort::new("doomed")) });
        ctx.merge_all_from_set(&[&doomed]); // abort round: GC without commit
        ctx.merge_all(); // commit for b
    })
    .unwrap();
    assert_eq!(live.to_vec(), vec![1, 2, 3]);

    let reopened = Store::open(&dir, StoreOptions::default()).unwrap();
    let rec = reopened.recover::<MList<u32>>().unwrap().expect("journal");
    assert_eq!(rec.data.to_vec(), vec![1, 2, 3]);
}

#[test]
fn crash_injection_recovers_verified_prefix_or_fails_closed_never_panics() {
    // Journal 40 standalone commits, remembering the exact state at each
    // sequence number. Then mutilate crash images of the directory at
    // seeded offsets — truncations and byte flips — and require recovery
    // to either reproduce the remembered state at whatever prefix it
    // reports, or return an error. Panics and divergent states fail the
    // test.
    let dir = scratch_dir("crash-base");
    let store = Store::open(&dir, StoreOptions::default()).unwrap();
    let mut data = MList::<u64>::new();
    store.begin(&data).unwrap();
    let mut prefix_states = vec![data.to_vec()]; // index = seq
    for i in 1..=40u64 {
        data.push(i * i);
        store.commit_now(&data, &TaskPath::root()).unwrap();
        prefix_states.push(data.to_vec());
    }
    let wal = single_wal(&dir);
    let wal_len = fs::metadata(&wal).unwrap().len();

    let mut rng = Lcg::new(0xC0FFEE);
    for case in 0..60 {
        let image = copy_dir(&dir, &format!("crash-{case}"));
        let target = image.join(wal.file_name().unwrap());
        let flip = case % 2 == 1;
        let offset = rng.next() % wal_len;
        if flip {
            let mut bytes = fs::read(&target).unwrap();
            bytes[offset as usize] ^= 0x40;
            fs::write(&target, bytes).unwrap();
        } else {
            let file = fs::OpenOptions::new().write(true).open(&target).unwrap();
            file.set_len(offset).unwrap();
        }

        let victim = Store::open(&image, StoreOptions::default()).unwrap();
        match victim.recover::<MList<u64>>() {
            Ok(Some(rec)) => {
                let seq = rec.last_seq as usize;
                assert!(seq < prefix_states.len(), "case {case}: impossible seq");
                assert_eq!(
                    rec.data.to_vec(),
                    prefix_states[seq],
                    "case {case} (flip={flip} offset={offset}): recovered state \
                     must be the journaled prefix at seq {seq}"
                );
                // A truncation is always a torn tail; a flip may also be
                // caught by the digest chain or record decoding, but
                // whatever prefix survives must verify — checked above.
                if !flip {
                    assert!(rec.last_seq <= 40);
                }
            }
            Ok(None) => panic!("case {case}: genesis snapshot was never touched"),
            Err(_) => {} // failing closed is always acceptable
        }
    }
}

#[test]
fn post_crash_journaling_continues_from_the_recovered_prefix() {
    let dir = scratch_dir("crash-continue");
    let store = Store::open(&dir, StoreOptions::default()).unwrap();
    let mut data = MList::<u64>::new();
    store.begin(&data).unwrap();
    for i in 1..=10u64 {
        data.push(i);
        store.commit_now(&data, &TaskPath::root()).unwrap();
    }
    // Tear mid-record: chop 3 bytes off the WAL tail.
    let wal = single_wal(&dir);
    let len = fs::metadata(&wal).unwrap().len();
    fs::OpenOptions::new()
        .write(true)
        .open(&wal)
        .unwrap()
        .set_len(len - 3)
        .unwrap();

    let reopened = Store::open(&dir, StoreOptions::default()).unwrap();
    let rec = reopened.recover::<MList<u64>>().unwrap().expect("journal");
    assert_eq!(rec.last_seq, 9, "final record was torn");
    assert!(rec.torn_bytes > 0);
    let mut data = rec.data;
    assert_eq!(data.to_vec(), (1..=9).collect::<Vec<_>>());

    // The repaired store keeps journaling; a later recovery sees both the
    // surviving prefix and the continuation.
    data.push(77);
    reopened.commit_now(&data, &TaskPath::root()).unwrap();
    let third = Store::open(&dir, StoreOptions::default()).unwrap();
    let rec2 = third.recover::<MList<u64>>().unwrap().expect("journal");
    assert_eq!(rec2.last_seq, 10);
    let mut expect: Vec<u64> = (1..=9).collect();
    expect.push(77);
    assert_eq!(rec2.data.to_vec(), expect);
}

#[test]
fn interior_segment_corruption_fails_closed() {
    let dir = scratch_dir("interior");
    let options = StoreOptions {
        segment_bytes: 64, // force a rotation on nearly every commit
        ..StoreOptions::default()
    };
    let store = Store::open(&dir, options.clone()).unwrap();
    let mut data = MList::<u64>::new();
    store.begin(&data).unwrap();
    for i in 1..=6u64 {
        data.push(i);
        store.commit_now(&data, &TaskPath::root()).unwrap();
    }
    let mut wals: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-"))
        })
        .collect();
    wals.sort();
    assert!(wals.len() > 1, "tiny segments must have rotated");

    // Flip a byte inside the *first* segment: not a torn tail, so
    // recovery must refuse rather than silently skip commits.
    let mut bytes = fs::read(&wals[0]).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    fs::write(&wals[0], bytes).unwrap();

    let victim = Store::open(&dir, options).unwrap();
    match victim.recover::<MList<u64>>() {
        Err(StoreError::Corrupt(_)) => {}
        other => panic!("expected Corrupt, got {other:?}"),
    }
}

#[test]
fn tampered_ops_with_a_valid_crc_trip_the_digest_chain() {
    // CRC32 framing catches accidental corruption; the FNV digest chain
    // is what catches *reframed* tampering. Rewrite the first commit's
    // ops with a bit flipped, keep the journaled chain value, and reframe
    // with a correct CRC: recovery must report DigestMismatch at seq 1.
    let dir = scratch_dir("tamper");
    let store = Store::open(&dir, StoreOptions::default()).unwrap();
    let mut data = MText::new();
    store.begin(&data).unwrap();
    for i in 0..4 {
        data.push_str(format!("line {i};"));
        store.commit_now(&data, &TaskPath::root()).unwrap();
    }

    let wal = single_wal(&dir);
    let bytes = fs::read(&wal).unwrap();
    let mut frames = Frames::new(&bytes);
    let (_, payload) = frames.next().expect("first frame");
    let first_end = frames.offset();
    let Record::Commit(mut commit) = Record::from_bytes(payload).unwrap() else {
        panic!("WAL must hold commit records");
    };
    assert_eq!(commit.seq, 1);
    let mut ops = commit.ops.to_vec();
    assert!(!ops.is_empty());
    let mid = ops.len() / 2;
    ops[mid] ^= 0x20;
    commit.ops = spawn_merge::store::wal::Bytes::copy_from_slice(&ops);
    // Note: commit.chain is left at the journaled value.
    let mut forged = Vec::new();
    encode_frame(Record::Commit(commit).to_bytes().as_slice(), &mut forged);
    forged.extend_from_slice(&bytes[first_end..]);
    fs::write(&wal, forged).unwrap();

    let victim = Store::open(&dir, StoreOptions::default()).unwrap();
    match victim.recover::<MText>() {
        Err(StoreError::DigestMismatch { seq: 1, .. }) => {}
        other => panic!("expected DigestMismatch at seq 1, got {other:?}"),
    }
}

/// The acceptance run: a 120-round collaborative-editing program, killed
/// mid-stream at a round boundary, must converge to the uninterrupted
/// run's exact final state after recovery + resumption — and the store
/// must be passive (a store-less run of the same program agrees).
#[test]
fn mid_stream_crash_recovery_converges_with_uninterrupted_run() {
    const ROUNDS: i64 = 120;

    // The program: the counter *is* the round number, incremented before
    // the merges of its round, so every round boundary is a commit
    // boundary in the journal (3 commits per round, the increment riding
    // in the first).
    fn rounds(ctx: &mut spawn_merge::TaskCtx<Doc>, upto: i64) {
        while ctx.data().2.get() < upto {
            let round = ctx.data().2.get() as u64;
            ctx.data_mut().2.add(1);
            doc_round(ctx, round);
        }
    }

    let options = StoreOptions {
        fsync: FsyncPolicy::EveryN(64),
        ..StoreOptions::default()
    };

    // Reference: uninterrupted, journaled run.
    let full_dir = scratch_dir("converge-full");
    let full_store = Store::open(&full_dir, options.clone()).unwrap();
    let fresh = || (MList::new(), MText::from("doc:"), MCounter::new(0));
    let (uninterrupted, ()) =
        run_with_store(fresh(), Pool::new(), &full_store, |ctx| rounds(ctx, ROUNDS)).unwrap();
    assert_eq!(uninterrupted.2.get(), ROUNDS);

    // Store passivity: the same program without a store computes the same
    // final state. (Digest-chain equality across runs is checked by the
    // store itself at every recovery; state equality is the user-visible
    // half of the theorem.)
    let (plain, ()) = run(fresh(), |ctx| rounds(ctx, ROUNDS));
    assert_eq!(doc_digest(&plain), doc_digest(&uninterrupted));

    // Interrupted: run the identical program, then "crash" by truncating
    // the WAL at the commit boundary closing round 60 (seq = 3 per round
    // × 60 rounds) in a copied crash image.
    let half_dir = scratch_dir("converge-half");
    let half_store = Store::open(&half_dir, options.clone()).unwrap();
    let (_, ()) =
        run_with_store(fresh(), Pool::new(), &half_store, |ctx| rounds(ctx, ROUNDS)).unwrap();
    let cut_seq = 3 * 60;
    let bound = half_store
        .frame_bounds()
        .into_iter()
        .find(|b| b.seq == cut_seq)
        .expect("cut bound exists");
    let image = copy_dir(&half_dir, "converge-image");
    let target = image.join(bound.segment.file_name().unwrap());
    fs::OpenOptions::new()
        .write(true)
        .open(&target)
        .unwrap()
        .set_len(bound.end)
        .unwrap();

    // Recover the prefix and resume the remaining 60 rounds.
    let resumed_store = Store::open(&image, options).unwrap();
    let rec = resumed_store.recover::<Doc>().unwrap().expect("journal");
    assert_eq!(rec.last_seq, cut_seq);
    assert_eq!(
        rec.data.2.get(),
        60,
        "cut lands exactly on a round boundary"
    );
    let (resumed, ()) = run_with_store(rec.data, Pool::new(), &resumed_store, |ctx| {
        rounds(ctx, ROUNDS)
    })
    .unwrap();

    assert_eq!(
        doc_digest(&resumed),
        doc_digest(&uninterrupted),
        "mid-stream recovery must converge to the uninterrupted final state"
    );
}

/// Parallel recovery (the default) and the `serial-recovery` escape
/// hatch's code path must be observationally identical: same state, same
/// per-child digest chains, same bookkeeping — on both the mixed-op
/// journal (raw fallback lane) and an insert-only journal (batch lane).
#[test]
fn parallel_and_serial_recovery_agree_on_state_and_chains() {
    // Mixed multi-structure workload: three children per round plus
    // root-local counter edits, so several digest chains interleave.
    let dir = scratch_dir("differential-mixed");
    let store = Store::open(&dir, StoreOptions::default()).unwrap();
    let initial: Doc = (MList::new(), MText::from("seed:"), MCounter::new(0));
    let (live, ()) = run_with_store(initial, Pool::new(), &store, |ctx| {
        for round in 0..12 {
            doc_round(ctx, round);
            ctx.data_mut().2.add(1);
        }
    })
    .unwrap();

    let serial = Store::open(&dir, StoreOptions::default())
        .unwrap()
        .recover_serial::<Doc>()
        .unwrap()
        .expect("journal exists");
    let parallel = Store::open(&dir, StoreOptions::default())
        .unwrap()
        .recover::<Doc>()
        .unwrap()
        .expect("journal exists");
    assert_eq!(doc_digest(&serial.data), doc_digest(&live));
    assert_eq!(doc_digest(&parallel.data), doc_digest(&live));
    assert_eq!(
        serial.chains, parallel.chains,
        "digest chains must match op-for-op"
    );
    assert_eq!(serial.last_seq, parallel.last_seq);
    assert_eq!(serial.replayed_ops, parallel.replayed_ops);
    assert_eq!(serial.snapshot_seq, parallel.snapshot_seq);

    // Insert-only journal across several segments: the shape the batch
    // replay lane accelerates.
    let dir = scratch_dir("differential-inserts");
    let options = StoreOptions {
        fsync: FsyncPolicy::EveryN(16),
        segment_bytes: 4096,
        ..StoreOptions::default()
    };
    let store = Store::open(&dir, options.clone()).unwrap();
    let mut data = MList::<u64>::new();
    store.begin(&data).unwrap();
    let mut rng = Lcg::new(0xD1FF);
    for _ in 0..40 {
        for _ in 0..25 {
            let at = (rng.next() as usize) % (data.len() + 1);
            data.insert(at, rng.next());
        }
        store.commit(&data, &TaskPath::root()).unwrap();
    }
    store.sync().unwrap();

    let serial = Store::open(&dir, options.clone())
        .unwrap()
        .recover_serial::<MList<u64>>()
        .unwrap()
        .expect("journal exists");
    let parallel = Store::open(&dir, options)
        .unwrap()
        .recover::<MList<u64>>()
        .unwrap()
        .expect("journal exists");
    assert_eq!(serial.data.to_vec(), data.to_vec());
    assert_eq!(parallel.data.to_vec(), data.to_vec());
    assert_eq!(serial.chains, parallel.chains);
    assert_eq!(serial.replayed_ops, parallel.replayed_ops);
}

/// Delta snapshots shorten recovery replay (the newest delta upgrades
/// the full base), and a torn or corrupt delta silently degrades to the
/// full snapshot plus a longer replay — never to a recovery failure.
#[test]
fn delta_snapshots_upgrade_recovery_and_survive_torn_deltas() {
    let dir = scratch_dir("delta-snapshots");
    let options = StoreOptions {
        fsync: FsyncPolicy::EveryN(8),
        snapshot_every_ops: 40,
        delta_snapshots: true,
        full_snapshot_every: 1000, // deltas only after the genesis full
        ..StoreOptions::default()
    };
    let store = Store::open(&dir, options.clone()).unwrap();
    let mut data = MList::<u64>::new();
    store.begin(&data).unwrap();
    let mut rng = Lcg::new(0xDE17A);
    for _ in 0..12 {
        for _ in 0..20 {
            let at = (rng.next() as usize) % (data.len() + 1);
            data.insert(at, rng.next());
        }
        store.commit(&data, &TaskPath::root()).unwrap();
    }
    store.sync().unwrap();

    let deltas: Vec<PathBuf> = {
        let mut v: Vec<PathBuf> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("snap-delta-"))
            })
            .collect();
        v.sort();
        v
    };
    assert!(
        deltas.len() >= 2,
        "automatic snapshots must have written deltas, found {deltas:?}"
    );

    let rec = Store::open(&dir, options.clone())
        .unwrap()
        .recover::<MList<u64>>()
        .unwrap()
        .expect("journal exists");
    assert_eq!(rec.data.to_vec(), data.to_vec());
    assert!(
        rec.snapshot_seq > 0,
        "recovery must start from a delta upgrade, not the genesis full"
    );
    let replay_from_delta = rec.replayed_ops;

    // Tear the newest delta mid-file: recovery falls back to an older
    // delta (or the full) and replays more — same state, no error.
    let newest = deltas.last().unwrap();
    let len = fs::metadata(newest).unwrap().len();
    fs::OpenOptions::new()
        .write(true)
        .open(newest)
        .unwrap()
        .set_len(len / 2)
        .unwrap();
    let rec = Store::open(&dir, options.clone())
        .unwrap()
        .recover::<MList<u64>>()
        .unwrap()
        .expect("journal exists");
    assert_eq!(rec.data.to_vec(), data.to_vec());
    assert!(rec.replayed_ops >= replay_from_delta);

    // Corrupt every delta: recovery degrades all the way to the genesis
    // full snapshot and replays the whole journal — still never an error.
    for delta in &deltas {
        let mut bytes = fs::read(delta).unwrap();
        if bytes.is_empty() {
            continue;
        }
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(delta, bytes).unwrap();
    }
    let rec = Store::open(&dir, options)
        .unwrap()
        .recover::<MList<u64>>()
        .unwrap()
        .expect("journal exists");
    assert_eq!(rec.data.to_vec(), data.to_vec());
    assert_eq!(rec.snapshot_seq, 0, "all deltas rejected, full base wins");
}

/// Retention crash-consistency: a crash after the full snapshot but
/// before (or midway through) pruning leaves extra covered files behind
/// — recovery must ignore them and reproduce the same state.
#[test]
fn crash_between_snapshot_and_prune_leaves_recovery_sound() {
    // KeepAll models the crash *before* any deletion: every covered
    // snapshot and segment survives alongside the new full snapshot.
    let dir = scratch_dir("prune-crash");
    let options = StoreOptions {
        fsync: FsyncPolicy::EveryN(4),
        segment_bytes: 2048,
        snapshot_every_ops: 30,
        retention: RetentionPolicy::KeepAll,
        ..StoreOptions::default()
    };
    let store = Store::open(&dir, options.clone()).unwrap();
    let mut data = MList::<u64>::new();
    store.begin(&data).unwrap();
    let mut rng = Lcg::new(0x9121);
    for _ in 0..20 {
        for _ in 0..10 {
            let at = (rng.next() as usize) % (data.len() + 1);
            data.insert(at, rng.next());
        }
        store.commit(&data, &TaskPath::root()).unwrap();
    }
    store.sync().unwrap();

    let names: Vec<String> = fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    assert!(
        names.contains(&"snap-00000000000000000000".to_string()),
        "KeepAll must preserve the genesis snapshot, found {names:?}"
    );
    let snaps: Vec<u64> = names
        .iter()
        .filter_map(|n| n.strip_prefix("snap-"))
        .filter_map(|s| s.parse().ok())
        .collect();
    let newest_snap = *snaps.iter().max().unwrap();
    assert!(newest_snap > 0, "automatic snapshots fired");

    let rec = Store::open(&dir, options.clone())
        .unwrap()
        .recover::<MList<u64>>()
        .unwrap()
        .expect("journal exists");
    assert_eq!(rec.data.to_vec(), data.to_vec());

    // Crash mid-prune: delete a strict subset of the covered segments
    // (those entirely below the newest snapshot) and recover again.
    let mut wals: Vec<(u64, PathBuf)> = fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter_map(|p| {
            let seq: u64 = p
                .file_name()?
                .to_str()?
                .strip_prefix("wal-")?
                .parse()
                .ok()?;
            Some((seq, p))
        })
        .collect();
    wals.sort();
    let covered: Vec<&(u64, PathBuf)> = wals
        .iter()
        .zip(wals.iter().skip(1))
        .filter(|(_, next)| next.0 <= newest_snap + 1)
        .map(|(cur, _)| cur)
        .collect();
    assert!(
        covered.len() >= 2,
        "tiny segments must leave several covered ones, got {}",
        covered.len()
    );
    fs::remove_file(&covered[covered.len() / 2].1).unwrap();

    let rec = Store::open(&dir, options)
        .unwrap()
        .recover::<MList<u64>>()
        .unwrap()
        .expect("journal exists");
    assert_eq!(
        rec.data.to_vec(),
        data.to_vec(),
        "partially pruned covered segments must not change recovery"
    );
}

/// Background snapshots take serialization and fsync off the commit
/// path: with the same workload and snapshot cadence, the summed
/// commit-path latency with background snapshots stays below the inline
/// configuration's, while recovery still sees every snapshot.
#[test]
fn background_snapshots_move_write_cost_off_the_commit_path() {
    fn run_commits(dir: &Path, background: bool) -> (std::time::Duration, Vec<u64>) {
        let options = StoreOptions {
            fsync: FsyncPolicy::EveryN(4),
            snapshot_every_ops: 600,
            snapshot_in_background: background,
            ..StoreOptions::default()
        };
        let store = Store::open(dir, options).unwrap();
        let pool = Pool::new();
        store.attach_pool(&pool);
        // A large baseline makes each snapshot's serialization cost
        // visible next to the per-commit work.
        let mut data = MList::<u64>::new();
        let mut rng = Lcg::new(0xBACC);
        for _ in 0..200_000 {
            data.push(rng.next());
        }
        store.begin(&data).unwrap();
        let mut in_commit = std::time::Duration::ZERO;
        for _ in 0..24 {
            for _ in 0..200 {
                let at = data.len() - (rng.next() as usize) % 512;
                data.insert(at, rng.next());
            }
            let t = std::time::Instant::now();
            store.commit(&data, &TaskPath::root()).unwrap();
            in_commit += t.elapsed();
            // The gap models application work between commits — the
            // window a background worker actually runs in.
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        store.sync().unwrap();
        store.wait_snapshots();
        assert!(store.take_error().is_none(), "worker parked no error");
        (in_commit, data.to_vec())
    }

    let inline_dir = scratch_dir("bg-snap-inline");
    let bg_dir = scratch_dir("bg-snap-worker");
    let (inline_cost, inline_state) = run_commits(&inline_dir, false);
    let (bg_cost, bg_state) = run_commits(&bg_dir, true);
    assert_eq!(inline_state, bg_state, "identical deterministic workload");

    for dir in [&inline_dir, &bg_dir] {
        let names: Vec<String> = fs::read_dir(dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert!(
            names
                .iter()
                .any(|n| n.starts_with("snap-") && !n.ends_with("00000000000000000000")),
            "snapshots must have fired in {dir:?}, found {names:?}"
        );
        let rec = Store::open(dir, StoreOptions::default())
            .unwrap()
            .recover::<MList<u64>>()
            .unwrap()
            .expect("journal exists");
        assert_eq!(rec.data.to_vec(), inline_state);
        assert!(rec.snapshot_seq > 0, "recovery starts from a real snapshot");
    }

    assert!(
        bg_cost < inline_cost,
        "commit-path time with background snapshots ({bg_cost:?}) must undercut \
         inline snapshots ({inline_cost:?})"
    );
}
