//! Integration test of the paper's server pattern (listing 3, §II-G):
//! Spawn an acceptor, Clone a sibling per connection, Sync per request,
//! MergeAny at the root — over the in-memory network substrate.

use std::time::Duration;

use spawn_merge::net::{NetError, Network, Stream};
use spawn_merge::{run, MMap, TaskAbort, TaskCtx, TaskResult};

type Db = MMap<String, i64>;

fn conn(socket: Stream, ctx: &mut TaskCtx<Db>) -> TaskResult {
    ctx.sync()?; // refresh the inherited (stale) data first
    loop {
        let Ok(req) = socket.recv_str() else {
            return Ok(());
        };
        let mut parts = req.split(' ');
        let reply = match (parts.next(), parts.next(), parts.next()) {
            (Some("INC"), Some(k), None) => {
                let key = k.to_string();
                let cur = ctx.data().get(&key).copied().unwrap_or(0);
                ctx.data_mut().insert(key, cur + 1);
                "OK".to_string()
            }
            (Some("GET"), Some(k), None) => ctx
                .data()
                .get(&k.to_string())
                .copied()
                .unwrap_or(-1)
                .to_string(),
            _ => "ERR".to_string(),
        };
        ctx.sync()?;
        socket
            .send_str(&reply)
            .map_err(|e| TaskAbort::new(e.to_string()))?;
    }
}

fn accept_task(net: Network, port: u16, ctx: &mut TaskCtx<Db>) -> TaskResult {
    let listener = net
        .listen(port)
        .map_err(|e| TaskAbort::new(e.to_string()))?;
    loop {
        if ctx.is_aborted() {
            return Ok(());
        }
        match listener.accept_timeout(Duration::from_millis(5)) {
            Ok(socket) => {
                ctx.clone_task(move |c| conn(socket, c))?;
            }
            Err(NetError::Timeout) => continue,
            Err(_) => return Ok(()),
        }
    }
}

fn connect_retry(net: &Network, port: u16) -> Stream {
    loop {
        if let Ok(s) = net.connect(port) {
            return s;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn server_serves_concurrent_clients() {
    const CLIENTS: usize = 8;
    const REQS: usize = 5;
    let net = Network::new();

    let clients: Vec<_> = (0..CLIENTS)
        .map(|i| {
            let net = net.clone();
            std::thread::spawn(move || {
                let sock = connect_retry(&net, 9000);
                for _ in 0..REQS {
                    sock.send_str(&format!("INC c{i}")).unwrap();
                    assert_eq!(sock.recv_str().unwrap(), "OK");
                }
                sock.send_str(&format!("GET c{i}")).unwrap();
                sock.recv_str().unwrap().parse::<i64>().unwrap()
            })
        })
        .collect();

    let (db, ()) = run(Db::new(), |ctx| {
        let accept_net = net.clone();
        let acceptor = ctx.spawn(move |c| accept_task(accept_net, 9000, c));
        let mut completed = 0;
        while completed < CLIENTS {
            if let Some(m) = ctx.merge_any() {
                if m.completed && m.task != acceptor.id() {
                    completed += 1;
                }
            }
        }
        acceptor.abort();
        while ctx.merge_any().is_some() {}
    });

    for (i, j) in clients.into_iter().enumerate() {
        let observed = j.join().unwrap();
        // The client's own GET reflects at least its own REQS increments
        // (each INC was synced before the OK went out). Exactly REQS since
        // keys are per-client.
        assert_eq!(observed, REQS as i64, "client {i}");
    }
    assert_eq!(db.len(), CLIENTS);
    for i in 0..CLIENTS {
        assert_eq!(db.get(&format!("c{i}")), Some(&(REQS as i64)));
    }
}

/// Structure choice matters: incrementing a shared value through
/// read-modify-write `Put`s on an LWW map can lose concurrent updates
/// (that is the documented last-merged-wins semantics, not a bug), whereas
/// a mergeable counter is commutative and never loses one. A server that
/// wants exact counts must model them as counters — the same lesson the
/// paper's framework teaches.
#[test]
fn commutative_counter_vs_lww_map_under_concurrent_connections() {
    use spawn_merge::MCounter;
    type Data = (Db, MCounter);

    const CLIENTS: usize = 6;
    let net = Network::new();

    fn conn2(socket: Stream, ctx: &mut TaskCtx<Data>) -> TaskResult {
        ctx.sync()?;
        loop {
            let Ok(req) = socket.recv_str() else {
                return Ok(());
            };
            if req.as_str() == "BUMP" {
                // The losing pattern: read-modify-write on an LWW map.
                let cur = ctx.data().0.get(&"rmw".to_string()).copied().unwrap_or(0);
                ctx.data_mut().0.insert("rmw".to_string(), cur + 1);
                // The winning pattern: a commutative counter op.
                ctx.data_mut().1.inc();
            }
            ctx.sync()?;
            socket
                .send_str("OK")
                .map_err(|e| TaskAbort::new(e.to_string()))?;
        }
    }

    fn accept2(net: Network, ctx: &mut TaskCtx<Data>) -> TaskResult {
        let listener = net
            .listen(9001)
            .map_err(|e| TaskAbort::new(e.to_string()))?;
        loop {
            if ctx.is_aborted() {
                return Ok(());
            }
            match listener.accept_timeout(Duration::from_millis(5)) {
                Ok(socket) => {
                    ctx.clone_task(move |c| conn2(socket, c))?;
                }
                Err(NetError::Timeout) => continue,
                Err(_) => return Ok(()),
            }
        }
    }

    let clients: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let net = net.clone();
            std::thread::spawn(move || {
                let sock = connect_retry(&net, 9001);
                sock.send_str("BUMP").unwrap();
                assert_eq!(sock.recv_str().unwrap(), "OK");
            })
        })
        .collect();

    let ((db, counter), ()) = run((Db::new(), MCounter::new(0)), |ctx| {
        let accept_net = net.clone();
        let acceptor = ctx.spawn(move |c| accept2(accept_net, c));
        let mut completed = 0;
        while completed < CLIENTS {
            if let Some(m) = ctx.merge_any() {
                if m.completed && m.task != acceptor.id() {
                    completed += 1;
                }
            }
        }
        acceptor.abort();
        while ctx.merge_any().is_some() {}
    });
    for j in clients {
        j.join().unwrap();
    }

    // The counter is exact, always.
    assert_eq!(counter.get(), CLIENTS as i64);
    // The LWW read-modify-write value is at least 1 and at most CLIENTS;
    // concurrent stale reads may have collapsed some updates.
    let rmw = *db.get(&"rmw".to_string()).expect("key written");
    assert!((1..=CLIENTS as i64).contains(&rmw), "rmw = {rmw}");
}
