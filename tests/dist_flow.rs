//! Integration tests of the distributed runtime (the paper's MPI
//! future-work direction) against the local runtime: the distributed
//! semantics must be observably identical to shared-memory Spawn & Merge.

use spawn_merge::dist::{DistRuntime, JobRegistry};
use spawn_merge::{run, MCounterMap, MList, MText, Mergeable};

type Data = (MList<u64>, MCounterMap<String>, MText);

fn data() -> Data {
    (MList::new(), MCounterMap::new(), MText::from("log:"))
}

fn jobs() -> JobRegistry<Data> {
    let mut jobs: JobRegistry<Data> = JobRegistry::new();
    jobs.register("work", |d, arg| {
        let n = arg[0] as u64;
        d.0.push(n);
        d.1.add(format!("chunk{}", n % 3), 1);
        let at = d.2.char_len();
        d.2.insert_str(at, format!(" t{n}"));
        Ok(())
    });
    jobs
}

/// The same logical program, run locally.
fn local_reference(tasks: u8) -> Data {
    let (out, ()) = run(data(), |ctx| {
        for n in 0..tasks {
            ctx.spawn(move |c| {
                let d = c.data_mut();
                d.0.push(u64::from(n));
                d.1.add(format!("chunk{}", n % 3), 1);
                let at = d.2.char_len();
                d.2.insert_str(at, format!(" t{n}"));
                Ok(())
            });
        }
        ctx.merge_all();
    });
    out
}

fn digest(d: &Data) -> String {
    format!(
        "{:?}|{:?}|{}",
        d.0.to_vec(),
        d.1.iter().collect::<Vec<_>>(),
        d.2
    )
}

#[test]
fn distributed_merge_all_matches_local_semantics() {
    const TASKS: u8 = 9;
    let local = local_reference(TASKS);

    let jobs = jobs();
    for nodes in [1usize, 2, 4] {
        let mut rt = DistRuntime::launch(nodes, data(), &jobs).unwrap();
        for n in 0..TASKS {
            let node = rt.node_for(n as usize);
            rt.spawn(node, "work", &[n]).unwrap();
        }
        rt.merge_all().unwrap();
        let dist = rt.shutdown().unwrap();
        assert_eq!(
            digest(&dist),
            digest(&local),
            "distributed ({nodes} nodes) must equal shared-memory result"
        );
    }
}

#[test]
fn distributed_is_deterministic_across_repetitions() {
    let jobs = jobs();
    let run_once = || {
        let mut rt = DistRuntime::launch(3, data(), &jobs).unwrap();
        for n in 0..12u8 {
            rt.spawn(rt.node_for(n as usize), "work", &[n]).unwrap();
        }
        rt.merge_all().unwrap();
        digest(&rt.shutdown().unwrap())
    };
    let first = run_once();
    for _ in 0..4 {
        assert_eq!(run_once(), first);
    }
}

#[test]
fn multi_round_distributed_computation() {
    // Rounds of spawn + merge, with coordinator edits in between: the
    // coordinator's history grows and later shadows fork from newer state.
    let jobs = jobs();
    let mut rt = DistRuntime::launch(2, data(), &jobs).unwrap();
    for round in 0..3u8 {
        for n in 0..4u8 {
            rt.spawn(rt.node_for(n as usize), "work", &[round * 4 + n])
                .unwrap();
        }
        let outcomes = rt.merge_all().unwrap();
        assert_eq!(outcomes.len(), 4);
        // Coordinator-local edit between rounds.
        rt.data_mut().1.add("rounds".to_string(), 1);
    }
    let final_data = rt.shutdown().unwrap();
    assert_eq!(final_data.0.len(), 12);
    assert_eq!(final_data.1.get(&"rounds".to_string()), 3);
    let chunk_total: i64 = (0..3).map(|i| final_data.1.get(&format!("chunk{i}"))).sum();
    assert_eq!(chunk_total, 12);
}

#[test]
fn distributed_word_count_is_complete_and_exact() {
    let mut jobs: JobRegistry<MCounterMap<String>> = JobRegistry::new();
    jobs.register("wc", |d, arg| {
        for w in String::from_utf8_lossy(arg).split_whitespace() {
            d.inc(w.to_string());
        }
        Ok(())
    });
    let corpus = ["a b c a", "b c d", "a a a", "d e"];
    let mut rt = DistRuntime::launch(2, MCounterMap::new(), &jobs).unwrap();
    for (i, chunk) in corpus.iter().enumerate() {
        rt.spawn(rt.node_for(i), "wc", chunk.as_bytes()).unwrap();
    }
    rt.merge_all().unwrap();
    let counts = rt.shutdown().unwrap();
    assert_eq!(counts.get(&"a".to_string()), 5);
    assert_eq!(counts.get(&"b".to_string()), 2);
    assert_eq!(counts.get(&"c".to_string()), 2);
    assert_eq!(counts.get(&"d".to_string()), 2);
    assert_eq!(counts.get(&"e".to_string()), 1);
    assert_eq!(counts.total(), 12);
}

#[test]
fn shadow_forks_isolate_remote_failures() {
    let mut jobs: JobRegistry<MList<u64>> = JobRegistry::new();
    jobs.register("ok", |d, _| {
        d.push(1);
        Ok(())
    });
    jobs.register("boom", |d, _| {
        d.push(666);
        Err("node melted".into())
    });
    let mut rt = DistRuntime::launch(2, MList::new(), &jobs).unwrap();
    rt.spawn(1, "ok", &[]).unwrap();
    rt.spawn(2, "boom", &[]).unwrap();
    rt.spawn(1, "ok", &[]).unwrap();
    let outcomes = rt.merge_all().unwrap();
    assert!(outcomes[0].merged());
    assert!(!outcomes[1].merged());
    assert!(outcomes[2].merged());
    let list = rt.shutdown().unwrap();
    assert_eq!(list.to_vec(), vec![1, 1], "failed task's changes dismissed");
}

#[test]
fn local_and_distributed_can_be_layered() {
    // A local Spawn & Merge program whose root also drives a cluster:
    // local children and remote tasks merge into the same data type.
    let mut jobs: JobRegistry<MCounterMap<String>> = JobRegistry::new();
    jobs.register("remote", |d, _| {
        d.add("remote".to_string(), 1);
        Ok(())
    });
    let (counts, ()) = run(MCounterMap::<String>::new(), |ctx| {
        // Local children.
        for _ in 0..3 {
            ctx.spawn(|c| {
                c.data_mut().add("local".to_string(), 1);
                Ok(())
            });
        }
        // Remote fan-out, coordinated from the root task; the returned
        // aggregate merges into the root's data like any other edit.
        let mut rt = DistRuntime::launch(2, ctx.data().fork(), &jobs).unwrap();
        rt.spawn(1, "remote", &[]).unwrap();
        rt.spawn(2, "remote", &[]).unwrap();
        rt.merge_all().unwrap();
        let remote_results = rt.shutdown().unwrap();
        ctx.data_mut().merge(&remote_results).unwrap();

        ctx.merge_all();
    });
    assert_eq!(counts.get(&"local".to_string()), 3);
    assert_eq!(counts.get(&"remote".to_string()), 2);
}

/// The coordinator journals every distributed merge; killing it between
/// batches and relaunching from the recovered journal (with a brand-new
/// cluster — workers are stateless between jobs) must land on the same
/// final state as a coordinator that never died.
#[test]
fn durable_coordinator_restarts_and_rejoins_where_the_journal_ends() {
    use spawn_merge::{Store, StoreOptions};

    let jobs = jobs();
    let dir = std::env::temp_dir().join(format!("sm-dist-journal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Reference: one coordinator does all 8 tasks.
    let reference = {
        let mut rt = DistRuntime::launch(2, data(), &jobs).unwrap();
        for n in 0..8u8 {
            let node = rt.node_for(n as usize);
            rt.spawn(node, "work", &[n]).unwrap();
        }
        rt.merge_all().unwrap();
        rt.shutdown().unwrap()
    };

    // Incarnation 1: journaled coordinator runs the first 4 tasks, then
    // "crashes" (dropped without shutdown — the journal already holds
    // every merge).
    {
        let store = Store::open(&dir, StoreOptions::default()).unwrap();
        let mut rt = DistRuntime::launch_durable(2, data(), &jobs, &store).unwrap();
        for n in 0..4u8 {
            let node = rt.node_for(n as usize);
            rt.spawn(node, "work", &[n]).unwrap();
        }
        rt.merge_all().unwrap();
        assert_eq!(store.last_seq(), 4, "one WAL record per distributed merge");
        // No shutdown: the coordinator process dies here.
    }

    // Incarnation 2: recover the journal, relaunch with a fresh cluster,
    // finish the remaining tasks, and shut down cleanly.
    let store = Store::open(&dir, StoreOptions::default()).unwrap();
    let recovered = store.recover::<Data>().unwrap().expect("journal exists");
    assert_eq!(recovered.last_seq, 4);
    let mut rt = DistRuntime::launch_durable(2, recovered.data, &jobs, &store).unwrap();
    for n in 4..8u8 {
        let node = rt.node_for(n as usize);
        rt.spawn(node, "work", &[n]).unwrap();
    }
    rt.merge_all().unwrap();
    let resumed = rt.shutdown().unwrap();

    assert_eq!(
        digest(&resumed),
        digest(&reference),
        "restarted coordinator must converge with the uninterrupted one"
    );

    // And the journal agrees with the in-memory result.
    let verify = Store::open(&dir, StoreOptions::default()).unwrap();
    let replayed = verify.recover::<Data>().unwrap().expect("journal exists");
    assert_eq!(digest(&replayed.data), digest(&reference));
}
