//! **spawn-merge** — the facade crate of the Spawn & Merge workspace.
//!
//! A from-scratch Rust reproduction of *Deterministic Synchronization of
//! Multi-Threaded Programs with Operational Transformation* (Boelmann,
//! Schwittmann, Weis — IPDPSW 2014): deterministic-by-default concurrency
//! where tasks work on isolated forks of mergeable data structures and
//! parents serialize their children's concurrent operations with
//! operational transformation.
//!
//! ```
//! use spawn_merge::{run, MList};
//!
//! // Listing 1 of the paper: concurrent appends, deterministic result.
//! let (list, ()) = run(MList::from_iter([1, 2, 3]), |ctx| {
//!     let t = ctx.spawn(|child| {
//!         child.data_mut().push(5);
//!         Ok(())
//!     });
//!     ctx.data_mut().push(4);
//!     ctx.merge_all_from_set(&[&t]);
//! });
//! assert_eq!(list.to_vec(), vec![1, 2, 3, 4, 5]);
//! ```
//!
//! The workspace layers, bottom to top:
//!
//! * [`ot`] — the operational transformation engine (operation algebras,
//!   transformation functions, the rebase control algorithm).
//! * [`mergeable`] — the mergeable data structure library (`MList`,
//!   `MText`, `MQueue`, `MMap`, `MSet`, `MCounter`, `MRegister`, `MTree`)
//!   and the [`Mergeable`] interface for custom structures.
//! * [`core`] — the task runtime: `spawn`, the `merge_*` family, `sync`,
//!   `clone_task`, aborts, merge conditions, the semaphore emulation.
//! * [`net`] — an in-memory socket substrate for the server example.
//! * [`sha1`] — from-scratch SHA-1 powering the evaluation workload.
//! * [`netsim`] — the paper's evaluation: the four-setup network
//!   simulator behind Figure 3.
//! * [`codec`] — a from-scratch binary wire format for operations and
//!   states (the offline dependency set has no serde byte format).
//! * [`dist`] — distributed Spawn & Merge over a simulated cluster (the
//!   paper's MPI future-work direction).
//! * [`obs`] — runtime observability: pluggable event recorders, metrics
//!   with Prometheus/JSON export, Chrome/Perfetto trace export, and the
//!   determinism auditor.
//! * [`store`] — durability: a CRC32-framed write-ahead log of root merge
//!   commits, CoW snapshots, and digest-verified deterministic crash
//!   recovery.
//! * [`server`] — the sharded multi-tenant session server: one process
//!   hosting thousands of live durable sessions behind a single
//!   listener, with broadcast fan-out, back-pressure, and idle-session
//!   eviction/rehydration.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use sm_codec as codec;
pub use sm_core as core;
pub use sm_dist as dist;
pub use sm_mergeable as mergeable;
pub use sm_net as net;
pub use sm_netsim as netsim;
pub use sm_obs as obs;
pub use sm_ot as ot;
pub use sm_server as server;
pub use sm_sha1 as sha1;
pub use sm_store as store;

// The everyday API, flattened.
pub use sm_core::{
    field_parallel_min_ops, parallel_merge_lanes, parallel_merge_min_children,
    parallel_split_min_ops, run, run_with_pool, run_with_sink, set_field_parallel_min_ops,
    set_parallel_merge_lanes, set_parallel_merge_min_children, set_parallel_split_min_ops,
    AbortReason, CommitSink, Condition, Disposition, MergeReport, MergedChild, Pool, SyncError,
    TaskAbort, TaskCtx, TaskHandle, TaskId, TaskResult,
};
pub use sm_mergeable::{
    mergeable_struct, CopyMode, MCounter, MCounterMap, MList, MMap, MQueue, MRegister, MSet, MText,
    MTree, MergeError, MergeStats, Mergeable, Persist, ReplayError,
};
pub use sm_store::{run_with_store, FsyncPolicy, RetentionPolicy, Store, StoreError, StoreOptions};
